package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"raxml/internal/core"
	"raxml/internal/msa"
	"raxml/internal/tree"
)

// HashBytes returns the content address of a blob: hex sha256.
func HashBytes(data []byte) string {
	h := sha256.Sum256(data)
	return hex.EncodeToString(h[:])
}

// BlobStore is the content-addressed artifact store: every input
// alignment, partition file, and result artifact lives under
// <dir>/blobs/<sha256> exactly once, so identical submissions and
// identical outputs share storage, and the persisted queue can
// reference inputs by hash across server restarts.
type BlobStore struct {
	dir string
	mu  sync.Mutex
}

// NewBlobStore opens (creating if needed) a store rooted at dir.
func NewBlobStore(dir string) (*BlobStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &BlobStore{dir: dir}, nil
}

func (s *BlobStore) path(hash string) string { return filepath.Join(s.dir, hash) }

// Put stores data and returns its content address. Idempotent: a blob
// already present is not rewritten.
func (s *BlobStore) Put(data []byte) (string, error) {
	hash := HashBytes(data)
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.path(hash)
	if _, err := os.Stat(p); err == nil {
		return hash, nil
	}
	tmp := p + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return "", err
	}
	if err := os.Rename(tmp, p); err != nil {
		return "", err
	}
	return hash, nil
}

// Get returns the blob at hash.
func (s *BlobStore) Get(hash string) ([]byte, error) {
	if hash == "" {
		return nil, nil
	}
	return os.ReadFile(s.path(hash))
}

// Has reports whether the blob exists.
func (s *BlobStore) Has(hash string) bool {
	_, err := os.Stat(s.path(hash))
	return err == nil
}

// CacheStats is one namespace's hit/miss record.
type CacheStats struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Entries int   `json:"entries"`
}

// WarmCache is the in-memory warm cache keyed by alignment content:
// expensive cold-setup products (namespace "patterns": pattern
// compression output; namespace "starttree": parsimony stepwise-
// addition trees) survive across runs, so a repeat submission of an
// already-seen alignment skips straight to the search. Namespaces keep
// independent hit/miss counters (exported at /debug/vars).
type WarmCache struct {
	mu sync.Mutex
	ns map[string]*nsCache
}

type nsCache struct {
	entries map[string]any
	stats   CacheStats
}

// NewWarmCache creates an empty cache.
func NewWarmCache() *WarmCache {
	return &WarmCache{ns: make(map[string]*nsCache)}
}

func (c *WarmCache) space(ns string) *nsCache {
	n := c.ns[ns]
	if n == nil {
		n = &nsCache{entries: make(map[string]any)}
		c.ns[ns] = n
	}
	return n
}

// Get looks key up in namespace ns, counting the hit or miss.
func (c *WarmCache) Get(ns, key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.space(ns)
	v, ok := n.entries[key]
	if ok {
		n.stats.Hits++
	} else {
		n.stats.Misses++
	}
	return v, ok
}

// Put inserts key in namespace ns.
func (c *WarmCache) Put(ns, key string, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.space(ns).entries[key] = v
}

// Stats snapshots every namespace's counters.
func (c *WarmCache) Stats() map[string]CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]CacheStats, len(c.ns))
	for name, n := range c.ns {
		st := n.stats
		st.Entries = len(n.entries)
		out[name] = st
	}
	return out
}

// Hits returns one namespace's hit count (test/e2e assertions).
func (c *WarmCache) Hits(ns string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.space(ns).stats.Hits
}

// cache namespaces
const (
	nsPatterns  = "patterns"
	nsStartTree = "starttree"
)

// patternsFor returns the compressed alignment for the given input
// blobs, via the warm cache: the pattern-compression pass (and the
// partition parse) runs only on the first sight of an alignment. The
// returned *msa.Patterns is shared read-only across concurrent runs —
// the grid already treats it as immutable.
func (s *Server) patternsFor(alignHash, partHash string) (*msa.Patterns, error) {
	key := alignHash + "/" + partHash
	if v, ok := s.cache.Get(nsPatterns, key); ok {
		return v.(*msa.Patterns), nil
	}
	align, err := s.blobs.Get(alignHash)
	if err != nil {
		return nil, fmt.Errorf("alignment blob: %w", err)
	}
	a, err := msa.Sniff(align)
	if err != nil {
		return nil, err
	}
	var pat *msa.Patterns
	if partHash != "" {
		part, err := s.blobs.Get(partHash)
		if err != nil {
			return nil, fmt.Errorf("partition blob: %w", err)
		}
		defs, err := msa.ParsePartitionFile(bytes.NewReader(part))
		if err != nil {
			return nil, err
		}
		pat, err = msa.CompressPartitioned(a, defs)
		if err != nil {
			return nil, err
		}
	} else {
		pat, err = msa.Compress(a)
		if err != nil {
			return nil, err
		}
	}
	s.cache.Put(nsPatterns, key, pat)
	return pat, nil
}

// startTrees adapts the warm cache to core.StartTreeCache. Both sides
// clone: searches mutate their start tree in place, so the cached tree
// must stay pristine.
type startTrees struct{ c *WarmCache }

func (st startTrees) GetStartTree(key string) (*tree.Tree, bool) {
	v, ok := st.c.Get(nsStartTree, key)
	if !ok {
		return nil, false
	}
	return v.(*tree.Tree).Clone(), true
}

func (st startTrees) PutStartTree(key string, t *tree.Tree) {
	st.c.Put(nsStartTree, key, t.Clone())
}

var _ core.StartTreeCache = startTrees{}
