package server

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"raxml/internal/core"
	"raxml/internal/grid"
	"raxml/internal/search"
	"raxml/internal/tree"
)

// Admission-control errors, mapped to HTTP statuses by the API layer.
var (
	// ErrQueueFull rejects a tenant whose queue is at its cap (429).
	ErrQueueFull = errors.New("server: tenant queue full")
	// ErrDraining rejects submissions during graceful shutdown (503).
	ErrDraining = errors.New("server: draining")
)

// tenantQ is one API key's admission state: a FIFO queue of its own
// runs plus its running count. Fairness across tenants is round-robin
// over tenants with queued work (see scheduleLocked), so a tenant
// flooding the queue only ever delays itself.
type tenantQ struct {
	key     string
	queue   []*Run
	running int
}

// enqueue admits a run into its tenant's queue, creating the tenant on
// first sight. Caller holds s.mu.
func (s *Server) enqueueLocked(run *Run) error {
	if s.draining {
		return ErrDraining
	}
	t := s.tenants[run.Tenant]
	if t == nil {
		t = &tenantQ{key: run.Tenant}
		s.tenants[run.Tenant] = t
		s.tenantOrder = append(s.tenantOrder, run.Tenant)
	}
	if len(t.queue) >= s.cfg.MaxQueuedPerTenant {
		return ErrQueueFull
	}
	t.queue = append(t.queue, run)
	run.log.event("queued", map[string]any{
		"run": run.ID, "tenant": run.Tenant, "position": len(t.queue),
	})
	return nil
}

// scheduleLocked starts as many queued runs as admission allows: global
// concurrency first, then per-tenant running caps, picking tenants
// round-robin from a rotating cursor so contending tenants alternate
// (fair share) while each tenant's own queue stays FIFO. Caller holds
// s.mu.
func (s *Server) scheduleLocked() {
	if s.draining {
		return
	}
	for s.runningTotal < s.cfg.MaxRunning {
		started := false
		for i := 0; i < len(s.tenantOrder); i++ {
			t := s.tenants[s.tenantOrder[(s.rrNext+i)%len(s.tenantOrder)]]
			if len(t.queue) == 0 || t.running >= s.cfg.MaxRunningPerTenant {
				continue
			}
			run := t.queue[0]
			t.queue = t.queue[1:]
			t.running++
			s.runningTotal++
			s.rrNext = (s.rrNext + i + 1) % len(s.tenantOrder)
			run.mu.Lock()
			run.state = StateRunning
			run.started = time.Now()
			run.mu.Unlock()
			s.wg.Add(1)
			go s.runOne(run, t)
			started = true
			break
		}
		if !started {
			return
		}
	}
}

// runOne drives a single run to a terminal state (or back to queued
// when a drain interrupts it), then frees its admission slot.
func (s *Server) runOne(run *Run, t *tenantQ) {
	defer s.wg.Done()
	run.log.event("run-start", map[string]any{"run": run.ID})
	err := s.execute(run)

	s.mu.Lock()
	t.running--
	s.runningTotal--
	s.activeRuns.Delete(run.ID)
	run.mu.Lock()
	run.grid = nil
	run.finished = time.Now()
	switch {
	case err == nil:
		run.state = StateDone
		s.metrics.runsDone.Add(1)
	case run.canceledByUser:
		run.state = StateCanceled
		s.metrics.runsCanceled.Add(1)
	case s.draining && errors.Is(err, grid.ErrCanceled):
		// Drain interrupted the run at a checkpoint boundary: it goes
		// back to the front of its tenant queue (it was already running)
		// and is persisted for the next server process.
		run.state = StateQueued
		run.finished = time.Time{}
		t.queue = append([]*Run{run}, t.queue...)
	default:
		run.state = StateFailed
		run.errMsg = err.Error()
		s.metrics.runsFailed.Add(1)
	}
	state := run.state
	// Capture the log while holding run.mu: once the run is terminal, a
	// resubmission (Submit) may swap run.log for a fresh one; the
	// terminal events below belong to this attempt's log.
	lg := run.log
	run.mu.Unlock()
	s.scheduleLocked()
	s.mu.Unlock()

	switch state {
	case StateDone:
		lg.event("run-done", map[string]any{"run": run.ID})
		lg.close()
	case StateCanceled:
		lg.event("run-canceled", map[string]any{"run": run.ID})
		lg.close()
	case StateFailed:
		lg.event("run-failed", map[string]any{"run": run.ID, "error": err.Error()})
		lg.close()
	case StateQueued:
		lg.event("run-drained", map[string]any{"run": run.ID})
	}
}

// executeRun is the real analysis body (tests substitute s.execute):
// warm-cache the compressed alignment, build a grid over the shared
// fleet with this run's rank budget and checkpoint seed, run the
// workload DAG, and store the artifacts content-addressed.
func (s *Server) executeRun(run *Run) error {
	pat, err := s.patternsFor(run.AlignHash, run.PartHash)
	if err != nil {
		return err
	}
	p := run.Params
	var model core.ModelType
	switch p.Model {
	case "GTRCAT":
		model = core.GTRCAT
	case "GTRGAMMA":
		model = core.GTRGAMMA
	default:
		return fmt.Errorf("unknown model %q", p.Model)
	}
	opts := core.Options{
		Bootstraps:     p.Bootstraps,
		Workers:        s.cfg.ThreadsPerRank,
		SeedParsimony:  p.SeedParsimony,
		SeedBootstrap:  p.SeedBootstrap,
		Model:          model,
		EmpiricalFreqs: true,
	}
	if p.FastSearch {
		fast := search.Fast()
		opts.ThoroughSettings = &fast
	}

	tracer := grid.NewTracerWith(nil, run.log.sink(), s.progressSink(run))
	run.mu.Lock()
	seed := run.checkpoints
	run.mu.Unlock()
	g := grid.New(grid.Config{
		Fleet:          s.cfg.Fleet,
		Tracer:         tracer,
		Concurrency:    s.cfg.GridConcurrency,
		ThreadsPerRank: s.cfg.ThreadsPerRank,
		MaxLeasedRanks: s.ranksBudget(),
		Checkpoints:    seed,
	})
	run.mu.Lock()
	run.grid = g
	canceled := run.canceledByUser
	run.mu.Unlock()
	if canceled {
		return grid.ErrCanceled
	}
	s.activeRuns.Store(run.ID, run)

	analysis := &grid.Analysis{
		Pat:              pat,
		Opts:             opts,
		Starts:           p.Starts,
		Replicates:       p.Bootstraps,
		Batch:            p.Batch,
		Bootstop:         p.Bootstop,
		JobPrefix:        run.ID,
		StartTrees:       startTrees{s.cache},
		StartTreeKeyBase: fmt.Sprintf("%s/%s/p%d", run.AlignHash, run.PartHash, p.SeedParsimony),
	}
	res, err := analysis.Build(g)
	if err != nil {
		return err
	}
	runErr := g.Run()
	// Snapshot checkpoints regardless of outcome: a drain-canceled run
	// resumes from them after restart.
	run.mu.Lock()
	run.checkpoints = g.Checkpoints()
	run.mu.Unlock()
	if runErr != nil {
		return runErr
	}
	return s.storeArtifacts(run, analysis, res)
}

// ranksBudget is the per-run leased-rank cap: an equal slice of the
// live fleet per admission slot (at least 1), or the configured
// per-run cap if tighter.
func (s *Server) ranksBudget() int {
	_, alive, _, _, _ := s.cfg.Fleet.Stats()
	budget := alive / s.cfg.MaxRunning
	if budget < 1 {
		budget = 1
	}
	if s.cfg.MaxRanksPerRun > 0 && budget > s.cfg.MaxRanksPerRun {
		budget = s.cfg.MaxRanksPerRun
	}
	return budget
}

// progressSink folds per-run grid events into the run record and the
// server metrics: replicate counts, best lnL, dispatch totals.
func (s *Server) progressSink(run *Run) grid.Sink {
	return func(rec map[string]any) {
		switch rec["ev"] {
		case "replicate":
			run.mu.Lock()
			run.replicatesDone++
			run.mu.Unlock()
		case "ml-done", "bs-done":
			if n, ok := rec["dispatches"].(int64); ok {
				s.metrics.dispatches.Add(n)
			}
		}
	}
}

// storeArtifacts renders the workload result into content-addressed
// artifacts: best/annotated/bootstrap/consensus trees, the info
// summary, and the run's own event trace.
func (s *Server) storeArtifacts(run *Run, a *grid.Analysis, res *grid.Result) error {
	arts := make(map[string]string)
	put := func(name, content string) error {
		hash, err := s.blobs.Put([]byte(content))
		if err != nil {
			return err
		}
		arts[name] = hash
		return nil
	}
	if len(res.Starts) > 0 {
		if err := put("bestTree", res.Best.Newick+"\n"); err != nil {
			return err
		}
		if res.BestAnnotated != "" {
			if err := put("bipartitions", res.BestAnnotated+"\n"); err != nil {
				return err
			}
		}
	}
	if len(res.Replicates) > 0 {
		var all strings.Builder
		for _, rep := range res.Replicates {
			nw, err := tree.FormatNewick(rep.Tree, nil)
			if err != nil {
				return err
			}
			all.WriteString(nw)
			all.WriteByte('\n')
		}
		if err := put("bootstrap", all.String()); err != nil {
			return err
		}
		if err := put("consensus", res.ConsensusNewick+"\n"); err != nil {
			return err
		}
	}
	var info strings.Builder
	fmt.Fprintf(&info, `run %s (%s, tenant %s)
alignment: %d taxa, %d patterns (sha256 %s)
ML starts: %d  bootstrap replicates: %d (batch %d, %d rounds)
bootstop: converged=%v WC-distance=%.6f
best final log-likelihood: %.6f (start %d)
`, run.ID, run.Params.Model, run.Tenant,
		a.Pat.NumTaxa(), a.Pat.NumPatterns(), run.AlignHash,
		len(res.Starts), len(res.Replicates), a.Batch, res.Rounds,
		res.Converged, res.WCDistance,
		res.Best.LogLikelihood, res.Best.Index)
	if err := put("info", info.String()); err != nil {
		return err
	}
	if err := put("events", string(run.log.dump())); err != nil {
		return err
	}
	run.mu.Lock()
	run.artifacts = arts
	run.bestLnL = res.Best.LogLikelihood
	run.rounds = res.Rounds
	run.converged = res.Converged
	run.replicatesDone = len(res.Replicates)
	run.mu.Unlock()
	return nil
}

// Cancel cancels a run: a queued run leaves its tenant queue
// immediately; a running run gets a cooperative grid cancel and unwinds
// at its next checkpoint boundary, its leased ranks draining back to
// the free pool through the normal release path.
func (s *Server) Cancel(id string) error {
	s.mu.Lock()
	run, ok := s.runs[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("server: unknown run %q", id)
	}
	run.mu.Lock()
	switch run.state {
	case StateQueued:
		t := s.tenants[run.Tenant]
		for i, qr := range t.queue {
			if qr == run {
				t.queue = append(t.queue[:i], t.queue[i+1:]...)
				break
			}
		}
		run.state = StateCanceled
		run.canceledByUser = true
		run.finished = time.Now()
		s.metrics.runsCanceled.Add(1)
		lg := run.log // resubmission may swap run.log once terminal
		run.mu.Unlock()
		s.mu.Unlock()
		lg.event("run-canceled", map[string]any{"run": run.ID})
		lg.close()
		s.persistQueue()
		return nil
	case StateRunning:
		run.canceledByUser = true
		g := run.grid
		run.mu.Unlock()
		s.mu.Unlock()
		if g != nil {
			g.Cancel()
		}
		return nil
	default:
		st := run.state
		run.mu.Unlock()
		s.mu.Unlock()
		return fmt.Errorf("server: run %s already %s", id, st)
	}
}
