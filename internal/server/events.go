package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"raxml/internal/grid"
)

// eventLog is one run's progress stream: an append-only sequence of
// JSON event records fed by the run's grid tracer (job transitions,
// leases, checkpoints, replicate lnLs, restripes) plus server lifecycle
// events (queued, run-start, run-done). Events are addressed by offset
// — the count of events already consumed — so both the SSE stream and
// the poll endpoint replay deterministically after a client reconnect.
type eventLog struct {
	mu      sync.Mutex
	recs    []json.RawMessage
	done    bool
	waiters []chan struct{}
}

func newEventLog() *eventLog { return &eventLog{} }

// appendRaw appends one marshaled event and wakes waiters.
func (l *eventLog) appendRaw(b []byte) {
	l.mu.Lock()
	if l.done {
		l.mu.Unlock()
		return
	}
	l.recs = append(l.recs, json.RawMessage(b))
	l.wakeLocked()
	l.mu.Unlock()
}

// event appends a server-side event (the tracer path marshals its own).
func (l *eventLog) event(ev string, fields map[string]any) {
	rec := make(map[string]any, len(fields)+2)
	for k, v := range fields {
		rec[k] = v
	}
	rec["ev"] = ev
	rec["t"] = time.Now().UTC().Format(time.RFC3339Nano)
	b, err := json.Marshal(rec)
	if err != nil {
		return
	}
	l.appendRaw(b)
}

// sink adapts the log to a grid tracer fan-out sink. The record is
// marshaled inside the sink (it is only borrowed for the call).
func (l *eventLog) sink() grid.Sink {
	return func(rec map[string]any) {
		b, err := json.Marshal(rec)
		if err != nil {
			return
		}
		l.appendRaw(b)
	}
}

// close marks the stream terminal: consumers drain and stop.
func (l *eventLog) close() {
	l.mu.Lock()
	l.done = true
	l.wakeLocked()
	l.mu.Unlock()
}

func (l *eventLog) wakeLocked() {
	for _, ch := range l.waiters {
		close(ch)
	}
	l.waiters = nil
}

// since returns events from offset on, plus the stream-done flag.
func (l *eventLog) since(offset int) ([]json.RawMessage, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if offset < 0 {
		offset = 0
	}
	if offset > len(l.recs) {
		offset = len(l.recs)
	}
	out := make([]json.RawMessage, len(l.recs)-offset)
	copy(out, l.recs[offset:])
	return out, l.done
}

func (l *eventLog) len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.recs)
}

// wait returns a channel closed when events beyond offset exist (or the
// stream closes). If that is already true, the channel is closed now.
func (l *eventLog) wait(offset int) <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	ch := make(chan struct{})
	if len(l.recs) > offset || l.done {
		close(ch)
		return ch
	}
	l.waiters = append(l.waiters, ch)
	return ch
}

// dump serializes the whole log as JSONL — the run's trace artifact.
func (l *eventLog) dump() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	var b []byte
	for _, rec := range l.recs {
		b = append(b, rec...)
		b = append(b, '\n')
	}
	return b
}

// serveEvents handles GET /v1/runs/{id}/events: Server-Sent Events when
// the client asks for text/event-stream (the `id:` of each frame is its
// 1-based offset, and a reconnecting client resumes via the standard
// Last-Event-ID header or ?offset=N), otherwise a JSON poll response
// {events, next, done} for ?offset=N.
func serveEvents(w http.ResponseWriter, r *http.Request, l *eventLog) {
	offset := 0
	if v := r.URL.Query().Get("offset"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "bad offset", http.StatusBadRequest)
			return
		}
		offset = n
	} else if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			offset = n
		}
	}
	if strings.Contains(r.Header.Get("Accept"), "text/event-stream") || r.URL.Query().Get("stream") == "sse" {
		serveSSE(w, r, l, offset)
		return
	}
	events, done := l.since(offset)
	writeJSON(w, http.StatusOK, map[string]any{
		"events": events,
		"next":   offset + len(events),
		"done":   done,
	})
}

func serveSSE(w http.ResponseWriter, r *http.Request, l *eventLog, offset int) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusNotImplemented)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	for {
		events, done := l.since(offset)
		for i, ev := range events {
			fmt.Fprintf(w, "id: %d\ndata: %s\n\n", offset+i+1, ev)
		}
		offset += len(events)
		if len(events) > 0 {
			flusher.Flush()
		}
		if done {
			fmt.Fprintf(w, "event: end\ndata: {\"offset\":%d}\n\n", offset)
			flusher.Flush()
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-l.wait(offset):
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
