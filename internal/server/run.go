package server

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"raxml/internal/grid"
)

// RunState is a run's lifecycle position.
type RunState string

const (
	// StateQueued runs wait for an admission slot (or, after a drain,
	// for the next server process to pick them back up).
	StateQueued RunState = "queued"
	// StateRunning runs own a grid over the shared fleet.
	StateRunning RunState = "running"
	// StateDone runs finished; artifacts are fetchable.
	StateDone RunState = "done"
	// StateFailed runs returned an error.
	StateFailed RunState = "failed"
	// StateCanceled runs were canceled by their tenant.
	StateCanceled RunState = "canceled"
)

// RunParams are the result-affecting analysis options of a submission —
// exactly the fields hashed into the deterministic run ID.
type RunParams struct {
	// Model is GTRCAT or GTRGAMMA.
	Model string `json:"model"`
	// Starts is the number of independent ML searches.
	Starts int `json:"starts"`
	// Bootstraps is the replicate count (per round with Bootstop).
	Bootstraps int `json:"bootstraps"`
	// Batch is replicates per bootstrap job (checkpoint granularity).
	Batch int `json:"batch"`
	// Bootstop adds replicate rounds until the WC test converges.
	Bootstop bool `json:"bootstop"`
	// SeedParsimony and SeedBootstrap are the -p / -x seeds.
	SeedParsimony int64 `json:"seed_p"`
	SeedBootstrap int64 `json:"seed_x"`
	// FastSearch selects the fast SPR preset for ML and bootstrap
	// searches (test- and demo-scale runs).
	FastSearch bool `json:"fast_search,omitempty"`
}

func (p *RunParams) withDefaults() RunParams {
	out := *p
	if out.Model == "" {
		out.Model = "GTRCAT"
	}
	if out.Starts < 0 {
		out.Starts = 0
	}
	if out.Bootstraps < 0 {
		out.Bootstraps = 0
	}
	if out.Batch < 1 {
		out.Batch = 5
	}
	if out.SeedParsimony == 0 {
		out.SeedParsimony = 12345
	}
	if out.SeedBootstrap == 0 {
		out.SeedBootstrap = 12345
	}
	return out
}

// DeriveRunID builds the deterministic run ID from the submission's
// content identity: alignment hash, partition hash, and every
// result-affecting option. Identical submissions collide by design —
// the submit path treats the ID as an idempotency key and returns the
// existing run — while any change of seed, model, or data yields a
// fresh ID. The same derivation names the CLI grid trace
// (RAxML_gridTrace.<id>.jsonl when -n is not given), so re-runs
// overwrite predictably and tests can assert paths.
func DeriveRunID(alignHash, partHash string, p RunParams) string {
	p = p.withDefaults()
	s := fmt.Sprintf("raxml-run/%s/%s/%s/%d/%d/%d/%v/%d/%d/%v",
		alignHash, partHash, p.Model, p.Starts, p.Bootstraps, p.Batch,
		p.Bootstop, p.SeedParsimony, p.SeedBootstrap, p.FastSearch)
	h := sha256.Sum256([]byte(s))
	return "r" + hex.EncodeToString(h[:6])
}

// Run is one analysis submission's full lifecycle record.
type Run struct {
	// ID is the deterministic run ID (DeriveRunID).
	ID string
	// Tenant is the submitting API key ("anonymous" if none).
	Tenant string
	// AlignHash / PartHash address the input blobs.
	AlignHash, PartHash string
	// Params are the analysis options.
	Params RunParams

	log *eventLog

	mu             sync.Mutex
	state          RunState
	errMsg         string
	submitted      time.Time
	started        time.Time
	finished       time.Time
	grid           *grid.Grid        // while running (cancel target)
	checkpoints    map[string][]byte // seed for a post-drain resume
	artifacts      map[string]string // artifact name -> blob hash
	canceledByUser bool
	bestLnL        float64
	replicatesDone int
	rounds         int
	converged      bool
}

func newRun(id, tenant, alignHash, partHash string, p RunParams) *Run {
	return &Run{
		ID:        id,
		Tenant:    tenant,
		AlignHash: alignHash,
		PartHash:  partHash,
		Params:    p,
		log:       newEventLog(),
		state:     StateQueued,
		submitted: time.Now(),
	}
}

// State returns the current lifecycle state.
func (r *Run) State() RunState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

// eventLog returns the run's current event log under the run lock: a
// failed or canceled run resubmitted through Submit gets a fresh log,
// so readers outside the lock must snapshot the pointer here.
func (r *Run) eventLog() *eventLog {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.log
}

// status renders the API status document.
func (r *Run) status() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := map[string]any{
		"id":           r.ID,
		"tenant":       r.Tenant,
		"state":        r.state,
		"params":       r.Params,
		"align_sha256": r.AlignHash,
		"submitted_at": r.submitted.UTC().Format(time.RFC3339Nano),
		"events":       r.log.len(),
	}
	if r.PartHash != "" {
		st["partition_sha256"] = r.PartHash
	}
	if !r.started.IsZero() {
		st["started_at"] = r.started.UTC().Format(time.RFC3339Nano)
	}
	if !r.finished.IsZero() {
		st["finished_at"] = r.finished.UTC().Format(time.RFC3339Nano)
	}
	if r.errMsg != "" {
		st["error"] = r.errMsg
	}
	if r.replicatesDone > 0 {
		st["replicates_done"] = r.replicatesDone
	}
	if r.state == StateDone {
		st["best_lnl"] = r.bestLnL
		st["rounds"] = r.rounds
		st["converged"] = r.converged
	}
	if len(r.artifacts) > 0 {
		arts := make(map[string]string, len(r.artifacts))
		for name, hash := range r.artifacts {
			arts[name] = hash
		}
		st["artifacts"] = arts
	}
	return st
}

// artifact returns the blob hash of a named artifact.
func (r *Run) artifact(name string) (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	hash, ok := r.artifacts[name]
	return hash, ok
}
