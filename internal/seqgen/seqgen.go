// Package seqgen synthesizes multiple sequence alignments by simulating
// GTR sequence evolution along phylogenetic trees.
//
// The paper benchmarks five real DNA/RNA data sets (Table 3) that are no
// longer retrievable (the hosting URL is dead). Per the reproduction's
// substitution policy, this package generates synthetic stand-ins with
// the same dimensions: the number of taxa and characters are matched
// exactly, and the tree length and rate heterogeneity are tuned so the
// number of distinct site patterns lands near the paper's values. Since
// the work per search is driven by (taxa, patterns), the stand-ins
// exercise the same code paths with the same load profile.
package seqgen

import (
	"fmt"
	"math"

	"raxml/internal/gtr"
	"raxml/internal/msa"
	"raxml/internal/rng"
	"raxml/internal/tree"
)

// Config describes one synthetic data set.
type Config struct {
	// Taxa and Chars are the alignment dimensions.
	Taxa, Chars int
	// Seed drives every random choice (tree, rates, substitutions).
	Seed int64
	// TreeScale multiplies all branch lengths; larger values produce
	// more substitutions and therefore more distinct patterns.
	TreeScale float64
	// Alpha is the Γ shape of per-site rate variation; smaller values
	// concentrate change in fewer sites (fewer patterns).
	Alpha float64
	// InvariantFraction is the fraction of sites forced invariant.
	InvariantFraction float64
	// Model is the generating substitution model (nil = default GTR
	// with mildly unequal frequencies).
	Model *gtr.Model
}

// Generate synthesizes an alignment per the config: a random topology,
// exponential branch lengths scaled by TreeScale, per-site Γ rates, and
// state evolution by direct sampling from GTR transition matrices.
func Generate(cfg Config) (*msa.Alignment, *tree.Tree, error) {
	if cfg.Taxa < 4 {
		return nil, nil, fmt.Errorf("seqgen: need >= 4 taxa, got %d", cfg.Taxa)
	}
	if cfg.Chars < 1 {
		return nil, nil, fmt.Errorf("seqgen: need >= 1 character, got %d", cfg.Chars)
	}
	if cfg.TreeScale <= 0 {
		cfg.TreeScale = 1
	}
	if cfg.Alpha <= 0 {
		cfg.Alpha = 1
	}
	model := cfg.Model
	if model == nil {
		var err error
		model, err = gtr.New(
			[6]float64{1.4, 4.2, 0.9, 1.1, 4.8, 1.0},
			[4]float64{0.30, 0.21, 0.24, 0.25})
		if err != nil {
			return nil, nil, err
		}
	}
	r := rng.New(cfg.Seed)
	names := make([]string, cfg.Taxa)
	for i := range names {
		names[i] = fmt.Sprintf("taxon%04d", i)
	}
	t := tree.Random(names, r)
	t.ScaleBranchLengths(cfg.TreeScale)

	// Per-site rates: a 16-class discretized Γ(alpha) with an invariant
	// fraction. Discrete classes let the evolver compute one transition
	// matrix per (edge, class) instead of per site, which makes the
	// paper-scale data sets (29,149 characters × 125 taxa) affordable.
	const rateClasses = 16
	classRates, err := gtr.GammaCategories(cfg.Alpha, rateClasses)
	if err != nil {
		return nil, nil, err
	}
	// class index per site; class = rateClasses means invariant.
	siteClass := make([]uint8, cfg.Chars)
	for i := range siteClass {
		if cfg.InvariantFraction > 0 && r.Float64() < cfg.InvariantFraction {
			siteClass[i] = rateClasses
			continue
		}
		siteClass[i] = uint8(r.Intn(rateClasses))
	}

	a := &msa.Alignment{
		Names: names,
		Seqs:  make([][]msa.State, cfg.Taxa),
	}
	for i := range a.Seqs {
		a.Seqs[i] = make([]msa.State, cfg.Chars)
	}

	// Evolve down the tree from a root adjacent to taxon 0. States are
	// sampled per site: root from the stationary distribution, children
	// from P(t·rate) rows.
	root := t.Nodes[0].Neighbors[0]
	states := make(map[int][]uint8) // node -> per-site state index
	rootStates := make([]uint8, cfg.Chars)
	for i := range rootStates {
		rootStates[i] = sampleIndex(r, model.Freqs[:])
	}
	states[root] = rootStates

	ps := make([][16]float64, rateClasses)
	var walk func(node, parent int)
	walk = func(node, parent int) {
		for _, v := range t.Nodes[node].Neighbors {
			if v < 0 || v == parent {
				continue
			}
			length := t.EdgeLength(node, v)
			for c := 0; c < rateClasses; c++ {
				model.P(length, classRates[c], &ps[c])
			}
			child := make([]uint8, cfg.Chars)
			parentStates := states[node]
			for site := 0; site < cfg.Chars; site++ {
				cls := siteClass[site]
				if cls == rateClasses {
					child[site] = parentStates[site]
					continue
				}
				child[site] = sampleIndex(r, ps[cls][int(parentStates[site])*4:int(parentStates[site])*4+4])
			}
			states[v] = child
			walk(v, node)
		}
	}
	walk(root, -1)

	for taxon := 0; taxon < cfg.Taxa; taxon++ {
		s := states[taxon]
		for site := 0; site < cfg.Chars; site++ {
			a.Seqs[taxon][site] = msa.State(1) << s[site]
		}
	}
	return a, t, nil
}

// sampleIndex draws an index proportional to the (non-negative) weights.
func sampleIndex(r *rng.RNG, weights []float64) uint8 {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	u := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return uint8(i)
		}
	}
	return uint8(len(weights) - 1)
}

// gammaVariate draws from Γ(shape, 1) (Marsaglia–Tsang for shape >= 1,
// boosted for shape < 1).
func gammaVariate(r *rng.RNG, shape float64) float64 {
	if shape < 1 {
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return gammaVariate(r, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u == 0 {
			continue
		}
		if math.Log(u) < 0.5*x*x+d-d*v+d*math.Log(v) {
			return d * v
		}
	}
}

// PaperDataSet identifies one of the five Table-3 benchmark data sets by
// its pattern count as used throughout the paper.
type PaperDataSet struct {
	// Taxa and Chars are the paper's exact dimensions.
	Taxa, Chars int
	// PaperPatterns is the distinct-pattern count Table 3 reports.
	PaperPatterns int
	// RecommendedBootstraps is the WC-bootstopping recommendation of
	// Table 3.
	RecommendedBootstraps int
	// Config generates the synthetic stand-in.
	Config Config
}

// PaperDataSets returns the five benchmark data sets of Table 3 in the
// paper's order (ascending pattern count). The generator configs were
// tuned (seed-stable) so the synthetic pattern counts approximate the
// paper's; exact taxa/characters are preserved.
func PaperDataSets() []PaperDataSet {
	// Calibrated synthetic pattern counts (vs paper): 353 vs 348,
	// 1113 vs 1130, 1842 vs 1846, 7617 vs 7429, 20097 vs 19436 —
	// all within 4%.
	return []PaperDataSet{
		{354, 460, 348, 1200, Config{Taxa: 354, Chars: 460, Seed: 3541, TreeScale: 0.55, Alpha: 0.55, InvariantFraction: 0.12}},
		{150, 1269, 1130, 650, Config{Taxa: 150, Chars: 1269, Seed: 1501, TreeScale: 1.0, Alpha: 0.8, InvariantFraction: 0.05}},
		{218, 2294, 1846, 550, Config{Taxa: 218, Chars: 2294, Seed: 2181, TreeScale: 0.8, Alpha: 0.7, InvariantFraction: 0.12}},
		{404, 13158, 7429, 700, Config{Taxa: 404, Chars: 13158, Seed: 4041, TreeScale: 0.40, Alpha: 0.50, InvariantFraction: 0.28}},
		{125, 29149, 19436, 50, Config{Taxa: 125, Chars: 29149, Seed: 1251, TreeScale: 0.65, Alpha: 0.90, InvariantFraction: 0.15}},
	}
}

// Summary reports a generated data set against its paper target.
type Summary struct {
	Taxa, Chars      int
	Patterns         int
	PaperPatterns    int
	PatternDeviation float64 // |patterns-paper|/paper
	RecommendedBoots int
}

// Summarize generates the data set and compares its pattern count
// against the paper's.
func (d PaperDataSet) Summarize() (*Summary, *msa.Patterns, error) {
	a, _, err := Generate(d.Config)
	if err != nil {
		return nil, nil, err
	}
	pat, err := msa.Compress(a)
	if err != nil {
		return nil, nil, err
	}
	dev := math.Abs(float64(pat.NumPatterns()-d.PaperPatterns)) / float64(d.PaperPatterns)
	return &Summary{
		Taxa:             d.Taxa,
		Chars:            d.Chars,
		Patterns:         pat.NumPatterns(),
		PaperPatterns:    d.PaperPatterns,
		PatternDeviation: dev,
		RecommendedBoots: d.RecommendedBootstraps,
	}, pat, nil
}
