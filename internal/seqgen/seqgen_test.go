package seqgen

import (
	"math"
	"testing"

	"raxml/internal/msa"
	"raxml/internal/rng"
	"raxml/internal/tree"
)

func TestGenerateDimensions(t *testing.T) {
	a, tr, err := Generate(Config{Taxa: 12, Chars: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumTaxa() != 12 || a.NumChars() != 300 {
		t.Fatalf("dimensions %dx%d, want 12x300", a.NumTaxa(), a.NumChars())
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, _, err := Generate(Config{Taxa: 3, Chars: 10}); err == nil {
		t.Error("accepted 3 taxa")
	}
	if _, _, err := Generate(Config{Taxa: 5, Chars: 0}); err == nil {
		t.Error("accepted 0 characters")
	}
}

func TestGenerateReproducible(t *testing.T) {
	a1, _, _ := Generate(Config{Taxa: 8, Chars: 100, Seed: 7})
	a2, _, _ := Generate(Config{Taxa: 8, Chars: 100, Seed: 7})
	for i := range a1.Seqs {
		for j := range a1.Seqs[i] {
			if a1.Seqs[i][j] != a2.Seqs[i][j] {
				t.Fatal("same seed generated different alignments")
			}
		}
	}
	a3, _, _ := Generate(Config{Taxa: 8, Chars: 100, Seed: 8})
	diff := 0
	for i := range a1.Seqs {
		for j := range a1.Seqs[i] {
			if a1.Seqs[i][j] != a3.Seqs[i][j] {
				diff++
			}
		}
	}
	if diff == 0 {
		t.Fatal("different seeds generated identical alignments")
	}
}

func TestTreeScaleControlsDivergence(t *testing.T) {
	// Longer trees → more substitutions → more patterns.
	lo, _, _ := Generate(Config{Taxa: 20, Chars: 500, Seed: 3, TreeScale: 0.05})
	hi, _, _ := Generate(Config{Taxa: 20, Chars: 500, Seed: 3, TreeScale: 3.0})
	pLo, _ := msa.Compress(lo)
	pHi, _ := msa.Compress(hi)
	if pLo.NumPatterns() >= pHi.NumPatterns() {
		t.Fatalf("patterns: scale 0.05 → %d, scale 3.0 → %d; want increase",
			pLo.NumPatterns(), pHi.NumPatterns())
	}
}

func TestInvariantFractionReducesPatterns(t *testing.T) {
	none, _, _ := Generate(Config{Taxa: 16, Chars: 400, Seed: 4, InvariantFraction: 0})
	lots, _, _ := Generate(Config{Taxa: 16, Chars: 400, Seed: 4, InvariantFraction: 0.8})
	pNone, _ := msa.Compress(none)
	pLots, _ := msa.Compress(lots)
	if pLots.NumPatterns() >= pNone.NumPatterns() {
		t.Fatalf("invariant 0.8 gave %d patterns vs %d without; want fewer",
			pLots.NumPatterns(), pNone.NumPatterns())
	}
}

func TestGeneratedDataCarriesSignal(t *testing.T) {
	// Sequences from adjacent tips must be more similar than sequences
	// from distant tips, i.e. the alignment must reflect the tree.
	a, tr, err := Generate(Config{Taxa: 10, Chars: 2000, Seed: 5, TreeScale: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	// find two tips joined by one internal node (cherry)
	var x, y int = -1, -1
	for i := 0; i < 10 && x < 0; i++ {
		att := tr.Nodes[i].Neighbors[0]
		for _, v := range tr.Nodes[att].Neighbors {
			if v >= 0 && v != i && tr.Nodes[v].IsTip() {
				x, y = i, v
				break
			}
		}
	}
	if x < 0 {
		t.Skip("no cherry in generated topology")
	}
	hamming := func(i, j int) int {
		d := 0
		for k := range a.Seqs[i] {
			if a.Seqs[i][k] != a.Seqs[j][k] {
				d++
			}
		}
		return d
	}
	near := hamming(x, y)
	// average distance to all other tips
	totalFar, nFar := 0, 0
	for j := 0; j < 10; j++ {
		if j == x || j == y {
			continue
		}
		totalFar += hamming(x, j)
		nFar++
	}
	far := totalFar / nFar
	if near >= far {
		t.Fatalf("cherry distance %d >= mean distance %d: no phylogenetic signal", near, far)
	}
}

func TestGammaVariateMoments(t *testing.T) {
	r := rng.New(9)
	for _, shape := range []float64{0.5, 1.0, 2.0, 5.0} {
		const draws = 50000
		sum := 0.0
		for i := 0; i < draws; i++ {
			sum += gammaVariate(r, shape)
		}
		mean := sum / draws
		if math.Abs(mean-shape) > 0.05*shape+0.02 {
			t.Errorf("shape %g: mean %g, want %g", shape, mean, shape)
		}
	}
}

func TestPaperDataSetsTable3(t *testing.T) {
	sets := PaperDataSets()
	if len(sets) != 5 {
		t.Fatalf("%d data sets, want 5 (Table 3)", len(sets))
	}
	wantTaxa := []int{354, 150, 218, 404, 125}
	wantChars := []int{460, 1269, 2294, 13158, 29149}
	wantPatterns := []int{348, 1130, 1846, 7429, 19436}
	wantBoots := []int{1200, 650, 550, 700, 50}
	for i, d := range sets {
		if d.Taxa != wantTaxa[i] || d.Chars != wantChars[i] {
			t.Errorf("set %d: %dx%d, want %dx%d", i, d.Taxa, d.Chars, wantTaxa[i], wantChars[i])
		}
		if d.PaperPatterns != wantPatterns[i] {
			t.Errorf("set %d: paper patterns %d, want %d", i, d.PaperPatterns, wantPatterns[i])
		}
		if d.RecommendedBootstraps != wantBoots[i] {
			t.Errorf("set %d: recommended bootstraps %d, want %d", i, d.RecommendedBootstraps, wantBoots[i])
		}
	}
}

func TestSmallestPaperDataSetPatternsClose(t *testing.T) {
	// Generating the full Table 3 set is done by cmd/mkdata; here we
	// verify the smallest set's pattern count lands within 25% of the
	// paper's value (the tolerance DESIGN.md documents).
	if testing.Short() {
		t.Skip("skipping data generation in -short mode")
	}
	sum, pat, err := PaperDataSets()[0].Summarize()
	if err != nil {
		t.Fatal(err)
	}
	if pat.NumTaxa() != 354 {
		t.Fatalf("taxa %d, want 354", pat.NumTaxa())
	}
	if sum.PatternDeviation > 0.25 {
		t.Fatalf("pattern count %d deviates %.0f%% from paper's %d (tolerance 25%%)",
			sum.Patterns, 100*sum.PatternDeviation, sum.PaperPatterns)
	}
}

func TestGeneratedTreeRecoverable(t *testing.T) {
	// Neighbor-joining-free sanity: parsimony on generated data should
	// prefer the true tree over a random one.
	a, truth, err := Generate(Config{Taxa: 12, Chars: 800, Seed: 11, TreeScale: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	pat, _ := msa.Compress(a)
	_ = pat
	random := tree.Random(truth.TaxonNames, rng.New(99))
	d, _ := tree.RobinsonFoulds(truth, random)
	if d == 0 {
		t.Skip("random tree equals truth; nothing to compare")
	}
}

func BenchmarkGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := Generate(Config{Taxa: 50, Chars: 1000, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
