package fabric

import (
	"errors"
	"net"
	"os"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// withTimeouts tightens the package I/O guards for a test and restores
// them afterwards.
func withTimeouts(t *testing.T, hello, dial time.Duration) {
	t.Helper()
	oldHello, oldDial := HelloTimeout, DialTimeout
	HelloTimeout, DialTimeout = hello, dial
	t.Cleanup(func() { HelloTimeout, DialTimeout = oldHello, oldDial })
}

// checkNoGoroutineGrowth asserts the goroutine count returns to the
// baseline, allowing teardown a moment to settle.
func checkNoGoroutineGrowth(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d, baseline %d\n%s", n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAcceptHelloDeadline: a dialer that connects to a fine-grain
// master and never sends its hello must not wedge Accept past
// HelloTimeout.
func TestAcceptHelloDeadline(t *testing.T) {
	withTimeouts(t, 200*time.Millisecond, DialTimeout)
	master, err := ListenTCP("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	c, err := net.Dial("tcp", master.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan error, 1)
	go func() { done <- master.Accept() }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Accept admitted a silent dialer")
		}
		if !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Fatalf("Accept error %v does not carry os.ErrDeadlineExceeded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Accept still blocked long past HelloTimeout")
	}
}

// TestStarHelloDeadline: the same wedged-dialer scenario against the
// grid's StarListener — AcceptLink must fail the silent connection
// within HelloTimeout, leak nothing, and keep accepting well-behaved
// dialers afterwards.
func TestStarHelloDeadline(t *testing.T) {
	withTimeouts(t, 200*time.Millisecond, DialTimeout)
	baseline := runtime.NumGoroutine()
	ln, err := ListenStar("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	wedged, err := net.Dial("tcp", ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, _, err := ln.AcceptLink(); err == nil {
		t.Fatal("AcceptLink admitted a silent dialer")
	} else if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("AcceptLink error %v does not carry os.ErrDeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("AcceptLink took %v, far past the 200ms HelloTimeout", elapsed)
	}
	wedged.Close()

	// A proper dialer still joins.
	type dialRes struct {
		link *TCPLink
		err  error
	}
	ch := make(chan dialRes, 1)
	go func() {
		l, err := DialStar(ln.Addr(), 42)
		ch <- dialRes{l, err}
	}()
	link, pid, err := ln.AcceptLink()
	if err != nil {
		t.Fatalf("AcceptLink after a rejected dialer: %v", err)
	}
	if pid != 42 {
		t.Fatalf("announced pid %d, want 42", pid)
	}
	link.Close()
	res := <-ch
	if res.err != nil {
		t.Fatal(res.err)
	}
	res.link.Close()
	checkNoGoroutineGrowth(t, baseline)
}

// TestFrameCRCDetectsWireCorruption flips a byte of the raw TCP stream
// beneath the framing (FaultConn via StarListener.WrapConn) and
// asserts the CRC32C check rejects the frame as a FrameCorruptError
// and bumps the corrupt-frame counter.
func TestFrameCRCDetectsWireCorruption(t *testing.T) {
	ln, err := ListenStar("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var fc *FaultConn
	// The hello frame occupies stream bytes [0, 17); corrupt a byte of
	// the next frame's payload.
	ln.WrapConn = func(c net.Conn) net.Conn {
		fc = &FaultConn{Conn: c, CorruptAt: []int64{30}}
		return fc
	}
	errCh := make(chan error, 1)
	go func() {
		link, err := DialStar(ln.Addr(), 0)
		if err != nil {
			errCh <- err
			return
		}
		defer link.Close()
		errCh <- link.Send(9, []byte("0123456789abcdef"))
	}()
	link, _, err := ln.AcceptLink()
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()
	before := CorruptFrames()
	_, _, err = link.Recv()
	if AsFrameCorrupt(err) == nil {
		t.Fatalf("Recv over a corrupted stream got %v, want FrameCorruptError", err)
	}
	if got := CorruptFrames(); got != before+1 {
		t.Fatalf("CorruptFrames went %d -> %d, want +1", before, got)
	}
	if fc.Flipped.Load() == 0 {
		t.Fatal("FaultConn never flipped the scheduled byte")
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}

// TestChanRecvDeadline covers the per-peer Recv deadline on the chan
// transport: expiry surfaces as a RankDeadError wrapping
// os.ErrDeadlineExceeded, a queued frame still wins over a passed
// deadline, and clearing restores unbounded waits.
func TestChanRecvDeadline(t *testing.T) {
	trs := NewChanTransports(2)
	defer trs[0].Close()

	if ok := SetRecvDeadline(trs[0], 1, time.Now().Add(50*time.Millisecond)); !ok {
		t.Fatal("ChanTransport rejected SetRecvDeadline")
	}
	start := time.Now()
	_, _, err := trs[0].Recv(1)
	rde := AsRankDead(err)
	if rde == nil || rde.Rank != 1 || !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("deadline expiry got %v, want RankDeadError{1, deadline exceeded}", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Recv blocked %v past a 50ms deadline", elapsed)
	}

	// Delivery-first: with a frame already queued, an expired deadline
	// must not eat it.
	if err := trs[1].Send(0, 7, []byte("x")); err != nil {
		t.Fatal(err)
	}
	for trs[0].Stats().MessagesRecv.Load() == 0 {
		tag, payload, err := trs[0].Recv(1)
		if err != nil {
			t.Fatalf("queued frame lost to an expired deadline: %v", err)
		}
		if tag != 7 || string(payload) != "x" {
			t.Fatalf("got tag %d payload %q", tag, payload)
		}
	}

	// Cleared deadline: Recv waits for a (late) frame again.
	SetRecvDeadline(trs[0], 1, time.Time{})
	go func() {
		time.Sleep(100 * time.Millisecond)
		trs[1].Send(0, 8, nil)
	}()
	if tag, _, err := trs[0].Recv(1); err != nil || tag != 8 {
		t.Fatalf("Recv after clearing deadline: tag %d, err %v", tag, err)
	}
}

// TestLinkRecvDeadline covers the chanLink deadline used by fleet
// probes and release drains.
func TestLinkRecvDeadline(t *testing.T) {
	m, w := LinkPair()
	defer m.Close()
	if ok := SetLinkRecvDeadline(m, time.Now().Add(50*time.Millisecond)); !ok {
		t.Fatal("chanLink rejected SetRecvDeadline")
	}
	if _, _, err := m.Recv(); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("deadline expiry got %v, want os.ErrDeadlineExceeded", err)
	}
	SetLinkRecvDeadline(m, time.Time{})
	if err := w.Send(3, nil); err != nil {
		t.Fatal(err)
	}
	if tag, _, err := m.Recv(); err != nil || tag != 3 {
		t.Fatalf("Recv after clear: tag %d, err %v", tag, err)
	}
}

// TestDialRetryGivesTypedTimeout: dialing a port nobody listens on
// fails with a DialTimeoutError after multiple backoff-spaced
// attempts.
func TestDialRetryGivesTypedTimeout(t *testing.T) {
	withTimeouts(t, HelloTimeout, 300*time.Millisecond)
	// Grab a port and close it so the dial is refused, not blackholed.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	_, err = DialStar(addr, 0)
	var dte *DialTimeoutError
	if !errors.As(err, &dte) {
		t.Fatalf("DialStar to a dead port got %v, want DialTimeoutError", err)
	}
	if dte.Attempts < 2 {
		t.Fatalf("gave up after %d attempts, want retries", dte.Attempts)
	}
}

// TestDialRetrySurvivesLateListener: a worker dialing before the
// master's listener exists connects once it appears — the race the
// backoff loop exists for.
func TestDialRetrySurvivesLateListener(t *testing.T) {
	withTimeouts(t, HelloTimeout, 5*time.Second)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	done := make(chan error, 1)
	go func() {
		link, err := DialStar(addr, 0)
		if err == nil {
			link.Close()
		}
		done <- err
	}()
	time.Sleep(100 * time.Millisecond)
	star, err := ListenStar(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer star.Close()
	go star.AcceptLink()
	if err := <-done; err != nil {
		t.Fatalf("DialStar with a late listener: %v", err)
	}
}

// TestRandomFaultPlanDeterministic: equal seeds build identical
// schedules; the first few seeds actually differ from each other.
func TestRandomFaultPlanDeterministic(t *testing.T) {
	distinct := 0
	for seed := int64(1); seed <= 8; seed++ {
		a, b := RandomFaultPlan(seed), RandomFaultPlan(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: plans differ:\n%s\n%s", seed, a, b)
		}
		if !reflect.DeepEqual(a, RandomFaultPlan(seed+100)) {
			distinct++
		}
	}
	if distinct == 0 {
		t.Fatal("every generated plan is identical; the seed is ignored")
	}
}

// TestFaultLinkDrop: a dropped incoming frame is never delivered; the
// armed deadline turns the loss into a timeout instead of a hang.
func TestFaultLinkDrop(t *testing.T) {
	m, w := LinkPair()
	fl := InjectFaults(m, &FaultPlan{Recv: []Fault{{Class: FaultDrop, Frame: 1}}})
	defer fl.Close()
	if err := w.Send(5, []byte("lost")); err != nil {
		t.Fatal(err)
	}
	if err := fl.SetRecvDeadline(time.Now().Add(50 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fl.Recv(); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("Recv of a dropped frame got %v, want deadline expiry", err)
	}
	if fl.InjectStats().Count(FaultDrop) != 1 {
		t.Fatalf("drop counter %d, want 1", fl.InjectStats().Count(FaultDrop))
	}
	// The next frame passes.
	fl.SetRecvDeadline(time.Time{})
	if err := w.Send(6, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if tag, payload, err := fl.Recv(); err != nil || tag != 6 || string(payload) != "ok" {
		t.Fatalf("frame after the drop: tag %d payload %q err %v", tag, payload, err)
	}
}

// TestFaultLinkCorruptAndSever: an incoming corrupt frame surfaces as
// the FrameCorruptError the CRC layer would raise; the sever threshold
// kills both ends like a vanished machine.
func TestFaultLinkCorruptAndSever(t *testing.T) {
	m, w := LinkPair()
	fl := InjectFaults(m, &FaultPlan{
		Recv:       []Fault{{Class: FaultCorrupt, Frame: 2}},
		SeverAfter: 4,
	})
	defer fl.Close()
	before := CorruptFrames()
	for i := 0; i < 2; i++ {
		if err := w.Send(byte(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	if tag, _, err := fl.Recv(); err != nil || tag != 0 {
		t.Fatalf("frame 1: tag %d err %v", tag, err)
	}
	if _, _, err := fl.Recv(); AsFrameCorrupt(err) == nil {
		t.Fatalf("frame 2 got %v, want FrameCorruptError", err)
	}
	if CorruptFrames() != before+1 {
		t.Fatal("corrupt-frame counter did not move")
	}
	// Frames 3 and 4 hit the sever threshold: the worker end dies too.
	for i := 0; i < 2; i++ {
		if err := w.Send(9, nil); err != nil {
			t.Fatal(err)
		}
	}
	if tag, _, err := fl.Recv(); err != nil || tag != 9 {
		t.Fatalf("frame 3: tag %d err %v", tag, err)
	}
	if _, _, err := fl.Recv(); err == nil {
		t.Fatal("Recv across the sever threshold succeeded")
	}
	if err := w.Send(9, nil); err == nil {
		t.Fatal("worker end survived the sever")
	}
	if fl.InjectStats().Count(FaultSever) != 1 {
		t.Fatalf("sever counter %d, want 1", fl.InjectStats().Count(FaultSever))
	}
}

// TestFaultTransportDropDelay covers the Transport-level middleware:
// per-peer schedules, delays actually delaying, drops turning into
// deadline-typed RankDeadErrors.
func TestFaultTransportDropDelay(t *testing.T) {
	trs := NewChanTransports(3)
	defer trs[0].Close()
	ft := InjectTransportFaults(trs[0], map[int]*FaultPlan{
		1: {Recv: []Fault{{Class: FaultDrop, Frame: 1}}},
		2: {Recv: []Fault{{Class: FaultDelay, Frame: 1, Delay: 60 * time.Millisecond}}},
	})
	if err := trs[1].Send(0, 1, []byte("dropped")); err != nil {
		t.Fatal(err)
	}
	if err := trs[2].Send(0, 2, []byte("late")); err != nil {
		t.Fatal(err)
	}
	// Peer 1's only frame was dropped: a deadline-bounded Recv times out.
	ft.SetRecvDeadline(1, time.Now().Add(50*time.Millisecond))
	if _, _, err := ft.Recv(1); AsRankDead(err) == nil {
		t.Fatalf("dropped frame got %v, want RankDeadError", err)
	}
	// Peer 2's frame arrives, measurably late.
	start := time.Now()
	tag, _, err := ft.Recv(2)
	if err != nil || tag != 2 {
		t.Fatalf("delayed frame: tag %d err %v", tag, err)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("delay fault waited only %v", d)
	}
	if got := ft.InjectStats().Total(); got != 2 {
		t.Fatalf("%d injections counted, want 2 (%s)", got, ft.InjectStats())
	}
}
