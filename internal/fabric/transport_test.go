package fabric

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// ---------------------------------------------------------------------
// Abort-determinism regressions (Comm)
// ---------------------------------------------------------------------

// TestRecvDeliversMessageSentBeforeAbort is the regression test for the
// drain-first Recv fix: a message fully sent before a peer aborted the
// world must still be delivered — before the fix, Recv raced its mail
// and abort channels and could nondeterministically drop it. Once the
// queue is drained, Recv reports ErrAborted instead of blocking.
func TestRecvDeliversMessageSentBeforeAbort(t *testing.T) {
	boom := errors.New("boom")
	sent := make(chan struct{})
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 1 {
			if err := c.Send(0, 42); err != nil {
				return err
			}
			close(sent)
			return boom // aborts the world mid-conversation
		}
		<-sent
		time.Sleep(20 * time.Millisecond) // let the abort land first
		v, err := c.Recv(1)
		if err != nil {
			return fmt.Errorf("Recv dropped a message sent before the abort: %v", err)
		}
		if v.(int) != 42 {
			return fmt.Errorf("Recv got %v, want 42", v)
		}
		// Queue drained, world aborted: deterministic ErrAborted.
		if _, err := c.Recv(1); !errors.Is(err, ErrAborted) {
			return fmt.Errorf("Recv after drain got %v, want ErrAborted", err)
		}
		// Sends into a dead world fail loudly instead of vanishing.
		if err := c.Send(1, 7); !errors.Is(err, ErrAborted) {
			return fmt.Errorf("Send after abort got %v, want ErrAborted", err)
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Run returned %v, want the aborting rank's error", err)
	}
}

// TestCollectiveAfterAbortFails pins collective behaviour after a rank
// died: every collective unblocks with ErrAborted (never a stale slot
// read, never a hang).
func TestCollectiveAfterAbortFails(t *testing.T) {
	boom := errors.New("boom")
	err := Run(3, func(c *Comm) error {
		if c.Rank() == 2 {
			return boom
		}
		// Both survivors: collectives must fail (rank 2 never arrives).
		if _, err := Gather(c, c.Rank()); !errors.Is(err, ErrAborted) {
			return fmt.Errorf("Gather got %v, want ErrAborted", err)
		}
		if err := c.Barrier(); !errors.Is(err, ErrAborted) {
			return fmt.Errorf("Barrier got %v, want ErrAborted", err)
		}
		dst := []float64{1, 2}
		if err := c.AllreduceSumFloats(dst, dst); !errors.Is(err, ErrAborted) {
			return fmt.Errorf("AllreduceSumFloats got %v, want ErrAborted", err)
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Run returned %v, want the aborting rank's error", err)
	}
}

// ---------------------------------------------------------------------
// Typed collectives
// ---------------------------------------------------------------------

func TestAllreduceSumFloats(t *testing.T) {
	const ranks = 4
	err := Run(ranks, func(c *Comm) error {
		src := []float64{float64(c.Rank()), 10 * float64(c.Rank()), 1}
		dst := make([]float64, 3)
		if err := c.AllreduceSumFloats(dst, src); err != nil {
			return err
		}
		want := []float64{0 + 1 + 2 + 3, 10 * (0 + 1 + 2 + 3), ranks}
		for i := range want {
			if dst[i] != want[i] {
				return fmt.Errorf("rank %d: dst[%d] = %g, want %g", c.Rank(), i, dst[i], want[i])
			}
		}
		// Aliased dst/src must work too (in-place reduce).
		inPlace := []float64{float64(c.Rank()), 10 * float64(c.Rank()), 1}
		if err := c.AllreduceSumFloats(inPlace, inPlace); err != nil {
			return err
		}
		for i := range want {
			if inPlace[i] != want[i] {
				return fmt.Errorf("rank %d aliased: [%d] = %g, want %g", c.Rank(), i, inPlace[i], want[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastFloats(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		v := []float64{float64(c.Rank()), float64(c.Rank() * 2)}
		if err := c.BcastFloats(1, v); err != nil {
			return err
		}
		if v[0] != 1 || v[1] != 2 {
			return fmt.Errorf("rank %d: got %v, want [1 2]", c.Rank(), v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// ---------------------------------------------------------------------
// Transports
// ---------------------------------------------------------------------

// exerciseTransport runs the shared conformance program over any
// connected transport group: point-to-point frames, the broadcast +
// collect collectives with their counters, and large payloads.
func exerciseTransport(t *testing.T, master Transport, workers []Transport) {
	t.Helper()
	size := master.Size()
	var wg sync.WaitGroup
	errs := make([]error, size)
	for i, w := range workers {
		wg.Add(1)
		go func(rank int, tr Transport) {
			defer wg.Done()
			errs[rank] = func() error {
				tag, payload, err := tr.Recv(0)
				if err != nil {
					return err
				}
				if tag != 7 || !bytes.Equal(payload, []byte("job")) {
					return fmt.Errorf("worker %d got tag %d payload %q", rank, tag, payload)
				}
				if err := tr.Send(0, 8, []byte{byte(rank)}); err != nil {
					return err
				}
				// Large frame round trip.
				tag, payload, err = tr.Recv(0)
				if err != nil {
					return err
				}
				if tag != 9 || len(payload) != 1<<16 {
					return fmt.Errorf("worker %d large frame: tag %d, %d bytes", rank, tag, len(payload))
				}
				return tr.Send(0, 8, payload[:128])
			}()
		}(i+1, w)
	}

	if err := Broadcast(master, 7, []byte("job")); err != nil {
		t.Fatal(err)
	}
	got, err := Collect(master, 8, 0xEE)
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < size; r++ {
		if len(got[r]) != 1 || got[r][0] != byte(r) {
			t.Fatalf("collected %v from rank %d", got[r], r)
		}
	}
	big := bytes.Repeat([]byte{0xAB}, 1<<16)
	if err := Broadcast(master, 9, big); err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(master, 8, 0xEE); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", r, err)
		}
	}
	st := master.Stats()
	if b := st.Broadcasts.Load(); b != 2 {
		t.Errorf("master counted %d broadcasts, want 2", b)
	}
	if r := st.Reductions.Load(); r != 2 {
		t.Errorf("master counted %d reductions, want 2", r)
	}
	if m := st.MessagesSent.Load(); m != int64(2*(size-1)) {
		t.Errorf("master sent %d messages, want %d", m, 2*(size-1))
	}
}

func TestChanTransport(t *testing.T) {
	trs := NewChanTransports(3)
	master := trs[0]
	exerciseTransport(t, master, []Transport{trs[1], trs[2]})

	// Close unblocks a pending Recv deterministically — after draining
	// buffered frames.
	if err := master.Send(1, 1, []byte("pending")); err != nil {
		t.Fatal(err)
	}
	master.Close()
	tag, payload, err := trs[1].Recv(0)
	if err != nil || tag != 1 || string(payload) != "pending" {
		t.Fatalf("drain-first after close: tag %d payload %q err %v", tag, payload, err)
	}
	if _, _, err := trs[1].Recv(0); !errors.Is(err, ErrTransportClosed) {
		t.Fatalf("Recv on closed transport got %v, want ErrTransportClosed", err)
	}
	if err := trs[1].Send(0, 1, nil); !errors.Is(err, ErrTransportClosed) {
		t.Fatalf("Send on closed transport got %v, want ErrTransportClosed", err)
	}
}

func TestTCPTransport(t *testing.T) {
	const size = 3
	master, err := ListenTCP("127.0.0.1:0", size)
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()

	workers := make([]Transport, size-1)
	var dialWG sync.WaitGroup
	dialErr := make([]error, size-1)
	for r := 1; r < size; r++ {
		dialWG.Add(1)
		go func(r int) {
			defer dialWG.Done()
			w, err := DialTCP(master.Addr(), r, size)
			if err != nil {
				dialErr[r-1] = err
				return
			}
			workers[r-1] = w
		}(r)
	}
	if err := master.Accept(); err != nil {
		t.Fatal(err)
	}
	dialWG.Wait()
	for _, err := range dialErr {
		if err != nil {
			t.Fatal(err)
		}
	}
	defer func() {
		for _, w := range workers {
			w.Close()
		}
	}()
	exerciseTransport(t, master, workers)

	// A closed master connection surfaces as ErrTransportClosed.
	master.Close()
	if _, _, err := workers[0].Recv(0); !errors.Is(err, ErrTransportClosed) {
		t.Fatalf("Recv on closed TCP link got %v, want ErrTransportClosed", err)
	}
}

// TestTCPTransportRejectsBadHello covers the handshake validation.
func TestTCPTransportRejectsBadHello(t *testing.T) {
	master, err := ListenTCP("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	go func() {
		// A dialer claiming an out-of-range rank: a correctly framed
		// hello announcing rank 5 of a 2-rank world.
		c, err := net.Dial("tcp", master.Addr())
		if err != nil {
			t.Error(err)
			return
		}
		defer c.Close()
		tc := &tcpConn{c: c}
		if err := tc.write(tcpHello, encodeHello(5)); err != nil {
			t.Error(err)
		}
		// Hold the connection open until the master rejects it.
		buf := make([]byte, 1)
		_, _ = c.Read(buf)
	}()
	if err := master.Accept(); err == nil {
		t.Fatal("Accept admitted an invalid hello")
	}
}

// TestTCPTransportRejectsOldProtocol covers the version word added to
// the hello in protocol v2: a v1-era hello (wrong version, wrong
// shape) must be rejected at accept time, not misframed.
func TestTCPTransportRejectsOldProtocol(t *testing.T) {
	master, err := ListenTCP("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	go func() {
		c, err := net.Dial("tcp", master.Addr())
		if err != nil {
			t.Error(err)
			return
		}
		defer c.Close()
		var hello [8]byte
		binary.LittleEndian.PutUint32(hello[0:4], ProtocolVersion+1)
		binary.LittleEndian.PutUint32(hello[4:8], 1)
		tc := &tcpConn{c: c}
		if err := tc.write(tcpHello, hello[:]); err != nil {
			t.Error(err)
		}
		buf := make([]byte, 1)
		_, _ = c.Read(buf)
	}()
	err = master.Accept()
	if err == nil {
		t.Fatal("Accept admitted a mismatched protocol version")
	}
	if !strings.Contains(err.Error(), "protocol") {
		t.Fatalf("version mismatch error %q does not mention the protocol", err)
	}
}
