package fabric

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// This file defines the pluggable byte-message fabric beneath the
// fine-grained distributed worker pool (internal/finegrain): a star of
// one master (rank 0) and size-1 workers exchanging framed, tagged
// byte messages. Two implementations ship:
//
//   - ChanTransport: the in-proc channel world. Ranks are goroutines of
//     one process; frames travel over buffered channels. This is the
//     transport behind fabric.Run-hosted hybrid runs and all unit tests.
//
//   - TCPTransport: real OS processes. The master listens, each worker
//     process dials in and identifies its rank with a hello frame;
//     frames are length-prefixed binary ([tag:1][len:4 LE][payload]).
//     This is the transport behind `raxml -fine -fine-transport tcp`,
//     where workers are spawned `raxml` processes in worker mode.
//
// The interface is deliberately tiny — point-to-point Send/Recv plus
// counters — because the finegrain protocol needs exactly two
// collective shapes, built here as helpers over any Transport:
// Broadcast (master -> all workers, one descriptor per dispatch) and
// Collect (one partial per worker, combined in rank order). The
// counters make the paper's "one broadcast + one reduction per
// dispatch" claim a testable quantity rather than a comment.

// ErrTransportClosed is returned from transport calls after this
// endpoint's own Close.
var ErrTransportClosed = errors.New("fabric: transport closed")

// RankDeadError reports that one specific peer rank is unreachable —
// its connection broke or its process died — while this endpoint is
// still healthy. It is the typed signal the grid scheduler reacts to
// (mark the rank dead, re-stripe the job's pool over survivors) where
// the pre-grid code could only fail the whole process. Rank is the
// dead peer's rank in whatever rank space the failing endpoint speaks
// (a job-local rank for a job's sub-transport, a world rank for a
// plain TCPTransport).
type RankDeadError struct {
	Rank int
	Err  error
}

// Error implements error.
func (e *RankDeadError) Error() string {
	return fmt.Sprintf("fabric: rank %d is dead: %v", e.Rank, e.Err)
}

// Unwrap exposes the underlying transport error.
func (e *RankDeadError) Unwrap() error { return e.Err }

// AsRankDead extracts a RankDeadError from err's chain (nil if none).
func AsRankDead(err error) *RankDeadError {
	var rde *RankDeadError
	if errors.As(err, &rde) {
		return rde
	}
	return nil
}

// Transport moves tagged byte frames between the ranks of one worker
// group. Rank 0 is the master; implementations must deliver frames
// reliably and in order per (sender, receiver) pair. A Transport
// endpoint is owned by one rank; Send and Recv may be called from one
// goroutine at a time per peer.
type Transport interface {
	// Rank returns this endpoint's rank in [0, Size).
	Rank() int
	// Size returns the number of ranks (master + workers).
	Size() int
	// Send delivers one tagged frame to rank `to`.
	Send(to int, tag byte, payload []byte) error
	// Recv blocks for the next frame from rank `from`.
	Recv(from int) (tag byte, payload []byte, err error)
	// Close tears the endpoint down; blocked and future calls fail.
	Close() error
	// Stats returns the endpoint's message counters.
	Stats() *TransportStats
}

// TransportStats counts an endpoint's traffic. Messages/Bytes count
// point-to-point frames; Broadcasts and Reductions count *collective
// operations* (one Broadcast covers all workers, one Collect covers
// all partials), incremented by the helpers below. The distributed
// relikelihood invariant — exactly one descriptor broadcast plus one
// reduction per pool dispatch — is asserted against these counters.
type TransportStats struct {
	MessagesSent atomic.Int64
	MessagesRecv atomic.Int64
	BytesSent    atomic.Int64
	BytesRecv    atomic.Int64
	Broadcasts   atomic.Int64
	Reductions   atomic.Int64
}

// Recycler is implemented by transports that keep a frame-buffer free
// list. Handing a Recv payload (no longer referenced) back via Recycle
// lets later Send/Recv calls reuse its backing array, which is what
// makes the finegrain dispatch hot path allocation-free.
type Recycler interface {
	Recycle(buf []byte)
}

// Recycle returns buf to t's free list if the transport keeps one;
// otherwise it is a no-op and the buffer is left to the GC. Callers
// must not touch buf afterwards.
func Recycle(t Transport, buf []byte) {
	if r, ok := t.(Recycler); ok {
		r.Recycle(buf)
	}
}

// Broadcast sends one frame from this endpoint (the master) to every
// other rank, counting a single broadcast operation.
func Broadcast(t Transport, tag byte, payload []byte) error {
	for r := 0; r < t.Size(); r++ {
		if r == t.Rank() {
			continue
		}
		if err := t.Send(r, tag, payload); err != nil {
			return err
		}
	}
	t.Stats().Broadcasts.Add(1)
	return nil
}

// Collect receives one frame from every other rank, in rank order, and
// returns the payloads indexed by rank (this endpoint's own entry is
// nil). Frames carrying errTag are surfaced as errors. Counts a single
// reduction operation.
func Collect(t Transport, wantTag, errTag byte) ([][]byte, error) {
	out := make([][]byte, t.Size())
	for r := 0; r < t.Size(); r++ {
		if r == t.Rank() {
			continue
		}
		tag, payload, err := t.Recv(r)
		if err != nil {
			return nil, err
		}
		switch tag {
		case wantTag:
			out[r] = payload
		case errTag:
			return nil, fmt.Errorf("fabric: rank %d: %s", r, payload)
		default:
			return nil, fmt.Errorf("fabric: rank %d sent tag %d, want %d", r, tag, wantTag)
		}
	}
	t.Stats().Reductions.Add(1)
	return out, nil
}

// ---------------------------------------------------------------------
// In-proc channel transport
// ---------------------------------------------------------------------

type chanFrame struct {
	tag     byte
	payload []byte
}

// ChanTransport is the in-proc Transport: one endpoint per rank, frames
// over per-pair buffered channels shared by the group.
type ChanTransport struct {
	rank   int
	size   int
	mail   [][]chan chanFrame // mail[from][to]
	closed chan struct{}
	once   *sync.Once
	free   chan []byte // group-shared frame buffer free list
	stats  TransportStats
}

// NewChanTransports creates one connected in-proc endpoint per rank.
// Closing any endpoint closes the whole group (a dead rank must not
// leave peers blocked, mirroring World.abort).
func NewChanTransports(size int) []*ChanTransport {
	if size < 1 {
		panic(fmt.Sprintf("fabric: transport group size %d < 1", size))
	}
	mail := make([][]chan chanFrame, size)
	for i := range mail {
		mail[i] = make([]chan chanFrame, size)
		for j := range mail[i] {
			mail[i][j] = make(chan chanFrame, 64)
		}
	}
	closed := make(chan struct{})
	once := new(sync.Once)
	free := make(chan []byte, 64*size)
	out := make([]*ChanTransport, size)
	for r := range out {
		out[r] = &ChanTransport{rank: r, size: size, mail: mail, closed: closed, once: once, free: free}
	}
	return out
}

// Rank returns this endpoint's rank.
func (c *ChanTransport) Rank() int { return c.rank }

// Size returns the group size.
func (c *ChanTransport) Size() int { return c.size }

// Stats returns this endpoint's counters.
func (c *ChanTransport) Stats() *TransportStats { return &c.stats }

// Send delivers one frame to rank `to`.
func (c *ChanTransport) Send(to int, tag byte, payload []byte) error {
	if to < 0 || to >= c.size || to == c.rank {
		return fmt.Errorf("fabric: Send to invalid rank %d", to)
	}
	select {
	case <-c.closed:
		return ErrTransportClosed
	default:
	}
	// Copy the payload: a real wire serializes, so senders may reuse
	// their encode buffers the moment Send returns. The in-proc
	// transport must not silently weaken that contract. The copy lands
	// in a recycled buffer when the free list has one big enough
	// (too-small pops are dropped, so the list converges on
	// steady-state frame sizes).
	var p []byte
	if len(payload) > 0 {
		select {
		case b := <-c.free:
			if cap(b) >= len(payload) {
				p = append(b[:0], payload...)
			} else {
				p = append([]byte(nil), payload...)
			}
		default:
			p = append([]byte(nil), payload...)
		}
	}
	select {
	case c.mail[c.rank][to] <- chanFrame{tag: tag, payload: p}:
		c.stats.MessagesSent.Add(1)
		c.stats.BytesSent.Add(int64(len(payload)))
		return nil
	case <-c.closed:
		return ErrTransportClosed
	}
}

// Recv blocks for the next frame from rank `from`, delivery-first on
// close (same drain-first rule as Comm.Recv on abort).
func (c *ChanTransport) Recv(from int) (byte, []byte, error) {
	if from < 0 || from >= c.size || from == c.rank {
		return 0, nil, fmt.Errorf("fabric: Recv from invalid rank %d", from)
	}
	select {
	case f := <-c.mail[from][c.rank]:
		c.stats.MessagesRecv.Add(1)
		c.stats.BytesRecv.Add(int64(len(f.payload)))
		return f.tag, f.payload, nil
	default:
	}
	select {
	case f := <-c.mail[from][c.rank]:
		c.stats.MessagesRecv.Add(1)
		c.stats.BytesRecv.Add(int64(len(f.payload)))
		return f.tag, f.payload, nil
	case <-c.closed:
		return 0, nil, ErrTransportClosed
	}
}

// Recycle pushes buf onto the group's frame free list (dropped when the
// list is full). Receivers call it once a Recv payload is fully
// consumed; the buffer then backs a later Send's copy.
func (c *ChanTransport) Recycle(buf []byte) {
	if cap(buf) == 0 {
		return
	}
	select {
	case c.free <- buf:
	default:
	}
}

// Close tears down the whole group.
func (c *ChanTransport) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}

// ---------------------------------------------------------------------
// TCP transport
// ---------------------------------------------------------------------

// tcpHello is the tag of the rank-identification frame a worker sends
// right after dialing.
const tcpHello byte = 0xFF

// TCPTransport is the cross-process Transport: length-prefixed tagged
// frames over one TCP connection per (master, worker) pair. The master
// endpoint holds size-1 accepted connections; a worker endpoint holds
// its single connection to the master. Workers can only exchange frames
// with rank 0 — the star topology is all the finegrain protocol needs.
type TCPTransport struct {
	rank   int
	size   int
	conns  []*tcpConn // indexed by peer rank; nil where no link exists
	ln     net.Listener
	closed atomic.Bool
	free   chan []byte // endpoint-wide frame buffer free list
	stats  TransportStats
}

type tcpConn struct {
	c    net.Conn
	rmu  sync.Mutex
	wmu  sync.Mutex
	rbuf [5]byte
	wbuf [5]byte
	free chan []byte // shared with the owning endpoint; may be nil
}

// ListenTCP creates the master endpoint: it listens on addr (use
// "127.0.0.1:0" for an ephemeral port, retrievable via Addr) and
// Accept waits for the size-1 workers to dial in and identify.
func ListenTCP(addr string, size int) (*TCPTransport, error) {
	if size < 2 {
		return nil, fmt.Errorf("fabric: TCP transport needs >= 2 ranks, got %d", size)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &TCPTransport{rank: 0, size: size, conns: make([]*tcpConn, size), ln: ln, free: make(chan []byte, 64)}, nil
}

// Addr returns the master's listen address (for spawning workers).
func (t *TCPTransport) Addr() string {
	if t.ln == nil {
		return ""
	}
	return t.ln.Addr().String()
}

// Accept blocks until every worker rank has connected and identified
// itself with a hello frame. Master-side only.
func (t *TCPTransport) Accept() error {
	if t.ln == nil {
		return fmt.Errorf("fabric: Accept on a worker endpoint")
	}
	for n := 0; n < t.size-1; n++ {
		c, err := t.ln.Accept()
		if err != nil {
			return err
		}
		tc := &tcpConn{c: c, free: t.free}
		tag, payload, err := tc.read()
		if err != nil {
			c.Close()
			return fmt.Errorf("fabric: worker hello: %w", err)
		}
		if tag != tcpHello || len(payload) != 4 {
			c.Close()
			return fmt.Errorf("fabric: bad worker hello (tag %d, %d bytes)", tag, len(payload))
		}
		rank := int(binary.LittleEndian.Uint32(payload))
		if rank < 1 || rank >= t.size || t.conns[rank] != nil {
			c.Close()
			return fmt.Errorf("fabric: worker hello claims invalid or duplicate rank %d", rank)
		}
		t.conns[rank] = tc
	}
	return nil
}

// DialTCP creates worker endpoint `rank`, connecting to the master at
// addr and identifying itself.
func DialTCP(addr string, rank, size int) (*TCPTransport, error) {
	if rank < 1 || rank >= size {
		return nil, fmt.Errorf("fabric: worker rank %d outside [1, %d)", rank, size)
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	t := &TCPTransport{rank: rank, size: size, conns: make([]*tcpConn, size), free: make(chan []byte, 64)}
	t.conns[0] = &tcpConn{c: c, free: t.free}
	var hello [4]byte
	binary.LittleEndian.PutUint32(hello[:], uint32(rank))
	if err := t.conns[0].write(tcpHello, hello[:]); err != nil {
		c.Close()
		return nil, err
	}
	return t, nil
}

// Rank returns this endpoint's rank.
func (t *TCPTransport) Rank() int { return t.rank }

// Size returns the group size.
func (t *TCPTransport) Size() int { return t.size }

// Stats returns this endpoint's counters.
func (t *TCPTransport) Stats() *TransportStats { return &t.stats }

func (t *TCPTransport) conn(peer int) (*tcpConn, error) {
	if peer < 0 || peer >= t.size || peer == t.rank {
		return nil, fmt.Errorf("fabric: invalid peer rank %d", peer)
	}
	c := t.conns[peer]
	if c == nil {
		return nil, fmt.Errorf("fabric: no link to rank %d (workers only talk to the master)", peer)
	}
	return c, nil
}

// peerError types a failed read/write on the link to `peer`: the
// endpoint's own Close yields ErrTransportClosed (the deliberate
// teardown every serve loop treats as a clean exit), and so does a
// vanished *master* seen from a worker — rank 0 dying IS the end of a
// star world. Everything else — EOF, connection reset, a killed worker
// process — becomes a typed RankDeadError the master can react to
// (mark the rank dead, re-stripe) instead of dying.
func (t *TCPTransport) peerError(peer int, err error) error {
	if t.closed.Load() || errors.Is(err, net.ErrClosed) {
		// Our own socket object was closed under a blocked call —
		// teardown, not peer death.
		return ErrTransportClosed
	}
	if t.rank != 0 && peer == 0 {
		return ErrTransportClosed
	}
	return &RankDeadError{Rank: peer, Err: err}
}

// Send delivers one frame to rank `to`. A broken link surfaces as a
// *RankDeadError carrying the peer's rank, not a process-fatal
// condition: the sender decides whether the rank's death is fatal.
func (t *TCPTransport) Send(to int, tag byte, payload []byte) error {
	c, err := t.conn(to)
	if err != nil {
		return err
	}
	if err := c.write(tag, payload); err != nil {
		return t.peerError(to, err)
	}
	t.stats.MessagesSent.Add(1)
	t.stats.BytesSent.Add(int64(len(payload)))
	return nil
}

// Recv blocks for the next frame from rank `from`. Peer death (EOF,
// reset) surfaces as *RankDeadError; this endpoint's own Close as
// ErrTransportClosed.
func (t *TCPTransport) Recv(from int) (byte, []byte, error) {
	c, err := t.conn(from)
	if err != nil {
		return 0, nil, err
	}
	tag, payload, err := c.read()
	if err != nil {
		return 0, nil, t.peerError(from, err)
	}
	t.stats.MessagesRecv.Add(1)
	t.stats.BytesRecv.Add(int64(len(payload)))
	return tag, payload, nil
}

// Recycle pushes buf onto the endpoint's frame free list (dropped when
// the list is full); later reads reuse it for incoming payloads.
func (t *TCPTransport) Recycle(buf []byte) {
	if cap(buf) == 0 {
		return
	}
	select {
	case t.free <- buf:
	default:
	}
}

// Close shuts every connection (and the master's listener) down.
func (t *TCPTransport) Close() error {
	t.closed.Store(true)
	var first error
	if t.ln != nil {
		first = t.ln.Close()
	}
	for _, c := range t.conns {
		if c == nil {
			continue
		}
		if err := c.c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// maxFrameBytes bounds one frame; a length prefix beyond it means a
// corrupt or hostile stream, not a real message.
const maxFrameBytes = 1 << 30

func (c *tcpConn) write(tag byte, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.wbuf[0] = tag
	binary.LittleEndian.PutUint32(c.wbuf[1:], uint32(len(payload)))
	if _, err := c.c.Write(c.wbuf[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := c.c.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

func (c *tcpConn) read() (byte, []byte, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	if _, err := io.ReadFull(c.c, c.rbuf[:]); err != nil {
		return 0, nil, err
	}
	tag := c.rbuf[0]
	n := binary.LittleEndian.Uint32(c.rbuf[1:])
	if n > maxFrameBytes {
		return 0, nil, fmt.Errorf("fabric: frame length %d exceeds limit", n)
	}
	if n == 0 {
		return tag, nil, nil
	}
	// Reuse a recycled buffer when one is big enough; too-small pops
	// are dropped so the list converges on steady-state frame sizes.
	var payload []byte
	select {
	case b := <-c.free:
		if cap(b) >= int(n) {
			payload = b[:n]
		} else {
			payload = make([]byte, n)
		}
	default:
		payload = make([]byte, n)
	}
	if _, err := io.ReadFull(c.c, payload); err != nil {
		return 0, nil, err
	}
	return tag, payload, nil
}
