package fabric

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/rand/v2"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// This file defines the pluggable byte-message fabric beneath the
// fine-grained distributed worker pool (internal/finegrain): a star of
// one master (rank 0) and size-1 workers exchanging framed, tagged
// byte messages. Two implementations ship:
//
//   - ChanTransport: the in-proc channel world. Ranks are goroutines of
//     one process; frames travel over buffered channels. This is the
//     transport behind fabric.Run-hosted hybrid runs and all unit tests.
//
//   - TCPTransport: real OS processes. The master listens, each worker
//     process dials in and identifies its rank with a hello frame;
//     frames are length-prefixed binary with a per-frame CRC32C
//     ([tag:1][len:4 LE][crc:4 LE][payload]). This is the transport
//     behind `raxml -fine -fine-transport tcp`, where workers are
//     spawned `raxml` processes in worker mode.
//
// The interface is deliberately tiny — point-to-point Send/Recv plus
// counters — because the finegrain protocol needs exactly two
// collective shapes, built here as helpers over any Transport:
// Broadcast (master -> all workers, one descriptor per dispatch) and
// Collect (one partial per worker, combined in rank order). The
// counters make the paper's "one broadcast + one reduction per
// dispatch" claim a testable quantity rather than a comment.

// ErrTransportClosed is returned from transport calls after this
// endpoint's own Close.
var ErrTransportClosed = errors.New("fabric: transport closed")

// RankDeadError reports that one specific peer rank is unreachable —
// its connection broke or its process died — while this endpoint is
// still healthy. It is the typed signal the grid scheduler reacts to
// (mark the rank dead, re-stripe the job's pool over survivors) where
// the pre-grid code could only fail the whole process. Rank is the
// dead peer's rank in whatever rank space the failing endpoint speaks
// (a job-local rank for a job's sub-transport, a world rank for a
// plain TCPTransport).
type RankDeadError struct {
	Rank int
	Err  error
}

// Error implements error.
func (e *RankDeadError) Error() string {
	return fmt.Sprintf("fabric: rank %d is dead: %v", e.Rank, e.Err)
}

// Unwrap exposes the underlying transport error.
func (e *RankDeadError) Unwrap() error { return e.Err }

// AsRankDead extracts a RankDeadError from err's chain (nil if none).
func AsRankDead(err error) *RankDeadError {
	var rde *RankDeadError
	if errors.As(err, &rde) {
		return rde
	}
	return nil
}

// ProtocolVersion is the fabric wire protocol generation, announced in
// every hello frame. Version 2 added the per-frame CRC32C to the TCP
// framing and the version word to the hellos; a v1 peer's 4-byte hello
// is rejected at accept time rather than silently misframed.
const ProtocolVersion uint32 = 2

// castagnoli is the CRC32C polynomial table used for frame checksums
// (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// FrameCorruptError reports a framed TCP message whose CRC32C check
// failed: the bytes read off the wire are not the bytes the peer sent.
// The stream is desynchronized beyond repair, so every consumer treats
// it like peer death — the master maps it through RankDeadError into
// the restripe path, a worker exits its serve loop.
type FrameCorruptError struct {
	Tag  byte   // tag byte as read (possibly itself corrupt)
	Len  uint32 // length prefix as read
	Want uint32 // checksum carried in the frame header
	Got  uint32 // checksum of the bytes actually received
}

// Error implements error.
func (e *FrameCorruptError) Error() string {
	return fmt.Sprintf("fabric: corrupt frame (tag %d, %d bytes): crc %08x, want %08x", e.Tag, e.Len, e.Got, e.Want)
}

// AsFrameCorrupt extracts a FrameCorruptError from err's chain (nil if
// none).
func AsFrameCorrupt(err error) *FrameCorruptError {
	var fce *FrameCorruptError
	if errors.As(err, &fce) {
		return fce
	}
	return nil
}

// corruptFrames counts frames rejected process-wide — by the TCP CRC
// check or by the fault injector emulating one — for the server's
// health metrics.
var corruptFrames atomic.Int64

// CorruptFrames returns the process-wide count of frames rejected as
// corrupt (exported at /debug/vars by the analysis server).
func CorruptFrames() int64 { return corruptFrames.Load() }

// Package-level I/O guards. Variables, not constants, so chaos tests
// tighten them to keep fault detection fast; zero disables a guard.
var (
	// WriteTimeout bounds every TCP frame write. A peer that stops
	// reading (wedged, SIGSTOPped) eventually backs TCP's window down
	// to zero and would block the sender forever; the deadline turns
	// that into an error on the sender's side.
	WriteTimeout = 2 * time.Minute
	// HelloTimeout bounds the hello handshake read on an accepted
	// connection: a dialer that connects but never identifies itself
	// must not block Accept/AcceptLink indefinitely.
	HelloTimeout = 10 * time.Second
	// DialTimeout bounds the total connect effort of DialTCP/DialStar,
	// across however many backoff-spaced attempts fit.
	DialTimeout = 15 * time.Second
)

// DialTimeoutError reports that DialTCP/DialStar gave up: no attempt
// connected within DialTimeout.
type DialTimeoutError struct {
	Addr     string
	Attempts int
	Err      error // last attempt's error
}

// Error implements error.
func (e *DialTimeoutError) Error() string {
	return fmt.Sprintf("fabric: dial %s: %d attempts failed within %s: %v", e.Addr, e.Attempts, DialTimeout, e.Err)
}

// Unwrap exposes the last dial error.
func (e *DialTimeoutError) Unwrap() error { return e.Err }

// dialBackoff bounds the retry spacing of dialRetry: capped exponential
// growth with full jitter on the upper half, so a fleet of workers
// restarted together does not hammer the master in lockstep.
const (
	dialBackoffMin = 5 * time.Millisecond
	dialBackoffMax = 250 * time.Millisecond
)

// dialRetry connects to addr, retrying with capped exponential backoff
// plus jitter until DialTimeout has elapsed. Workers routinely dial a
// master whose listener is still a few milliseconds from existing
// (spawn races) or that is restarting; a bare net.Dial would turn that
// window into a hard failure.
func dialRetry(addr string) (net.Conn, error) {
	deadline := time.Now().Add(DialTimeout)
	backoff := dialBackoffMin
	var lastErr error
	for attempt := 1; ; attempt++ {
		d := net.Dialer{Deadline: deadline}
		c, err := d.Dial("tcp", addr)
		if err == nil {
			return c, nil
		}
		lastErr = err
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, &DialTimeoutError{Addr: addr, Attempts: attempt, Err: lastErr}
		}
		sleep := backoff/2 + rand.N(backoff/2+1)
		if sleep > remain {
			sleep = remain
		}
		time.Sleep(sleep)
		if backoff *= 2; backoff > dialBackoffMax {
			backoff = dialBackoffMax
		}
	}
}

// PeerDeadliner is implemented by transports that can bound Recv waits
// per peer. Arming a deadline makes a Recv from that peer fail instead
// of blocking past it — the mechanism behind the per-dispatch straggler
// guard — and the zero time clears it.
type PeerDeadliner interface {
	SetRecvDeadline(peer int, at time.Time) error
}

// SetRecvDeadline arms (or, with the zero time, clears) the Recv
// deadline for one peer on transports that support it; it reports
// whether t did. On expiry the blocked or next Recv fails with an error
// chain containing os.ErrDeadlineExceeded, typed per transport (a
// RankDeadError on the master-side implementations: a rank too slow to
// answer is indistinguishable from a dead one, and is handled the same
// way).
func SetRecvDeadline(t Transport, peer int, at time.Time) bool {
	d, ok := t.(PeerDeadliner)
	if !ok {
		return false
	}
	return d.SetRecvDeadline(peer, at) == nil
}

// Transport moves tagged byte frames between the ranks of one worker
// group. Rank 0 is the master; implementations must deliver frames
// reliably and in order per (sender, receiver) pair. A Transport
// endpoint is owned by one rank; Send and Recv may be called from one
// goroutine at a time per peer.
type Transport interface {
	// Rank returns this endpoint's rank in [0, Size).
	Rank() int
	// Size returns the number of ranks (master + workers).
	Size() int
	// Send delivers one tagged frame to rank `to`.
	Send(to int, tag byte, payload []byte) error
	// Recv blocks for the next frame from rank `from`.
	Recv(from int) (tag byte, payload []byte, err error)
	// Close tears the endpoint down; blocked and future calls fail.
	Close() error
	// Stats returns the endpoint's message counters.
	Stats() *TransportStats
}

// TransportStats counts an endpoint's traffic. Messages/Bytes count
// point-to-point frames; Broadcasts and Reductions count *collective
// operations* (one Broadcast covers all workers, one Collect covers
// all partials), incremented by the helpers below. The distributed
// relikelihood invariant — exactly one descriptor broadcast plus one
// reduction per pool dispatch — is asserted against these counters.
type TransportStats struct {
	MessagesSent atomic.Int64
	MessagesRecv atomic.Int64
	BytesSent    atomic.Int64
	BytesRecv    atomic.Int64
	Broadcasts   atomic.Int64
	Reductions   atomic.Int64
}

// Recycler is implemented by transports that keep a frame-buffer free
// list. Handing a Recv payload (no longer referenced) back via Recycle
// lets later Send/Recv calls reuse its backing array, which is what
// makes the finegrain dispatch hot path allocation-free.
type Recycler interface {
	Recycle(buf []byte)
}

// Recycle returns buf to t's free list if the transport keeps one;
// otherwise it is a no-op and the buffer is left to the GC. Callers
// must not touch buf afterwards.
func Recycle(t Transport, buf []byte) {
	if r, ok := t.(Recycler); ok {
		r.Recycle(buf)
	}
}

// Broadcast sends one frame from this endpoint (the master) to every
// other rank, counting a single broadcast operation.
func Broadcast(t Transport, tag byte, payload []byte) error {
	for r := 0; r < t.Size(); r++ {
		if r == t.Rank() {
			continue
		}
		if err := t.Send(r, tag, payload); err != nil {
			return err
		}
	}
	t.Stats().Broadcasts.Add(1)
	return nil
}

// Collect receives one frame from every other rank, in rank order, and
// returns the payloads indexed by rank (this endpoint's own entry is
// nil). Frames carrying errTag are surfaced as errors. Counts a single
// reduction operation.
func Collect(t Transport, wantTag, errTag byte) ([][]byte, error) {
	out := make([][]byte, t.Size())
	for r := 0; r < t.Size(); r++ {
		if r == t.Rank() {
			continue
		}
		tag, payload, err := t.Recv(r)
		if err != nil {
			return nil, err
		}
		switch tag {
		case wantTag:
			out[r] = payload
		case errTag:
			return nil, fmt.Errorf("fabric: rank %d: %s", r, payload)
		default:
			return nil, fmt.Errorf("fabric: rank %d sent tag %d, want %d", r, tag, wantTag)
		}
	}
	t.Stats().Reductions.Add(1)
	return out, nil
}

// ---------------------------------------------------------------------
// In-proc channel transport
// ---------------------------------------------------------------------

type chanFrame struct {
	tag     byte
	payload []byte
}

// ChanTransport is the in-proc Transport: one endpoint per rank, frames
// over per-pair buffered channels shared by the group.
type ChanTransport struct {
	rank   int
	size   int
	mail   [][]chan chanFrame // mail[from][to]
	closed chan struct{}
	once   *sync.Once
	free   chan []byte // group-shared frame buffer free list
	stats  TransportStats

	// dl[from] is the armed Recv deadline for that peer (UnixNano; 0 =
	// none); timers[from] is the reused expiry timer, owned by the one
	// goroutine allowed to Recv from that peer (so the dispatch hot
	// path stays allocation-free once warm).
	dl     []atomic.Int64
	timers []*time.Timer
}

// NewChanTransports creates one connected in-proc endpoint per rank.
// Closing any endpoint closes the whole group (a dead rank must not
// leave peers blocked, mirroring World.abort).
func NewChanTransports(size int) []*ChanTransport {
	if size < 1 {
		panic(fmt.Sprintf("fabric: transport group size %d < 1", size))
	}
	mail := make([][]chan chanFrame, size)
	for i := range mail {
		mail[i] = make([]chan chanFrame, size)
		for j := range mail[i] {
			mail[i][j] = make(chan chanFrame, 64)
		}
	}
	closed := make(chan struct{})
	once := new(sync.Once)
	free := make(chan []byte, 64*size)
	out := make([]*ChanTransport, size)
	for r := range out {
		out[r] = &ChanTransport{
			rank: r, size: size, mail: mail, closed: closed, once: once, free: free,
			dl: make([]atomic.Int64, size), timers: make([]*time.Timer, size),
		}
	}
	return out
}

// Rank returns this endpoint's rank.
func (c *ChanTransport) Rank() int { return c.rank }

// Size returns the group size.
func (c *ChanTransport) Size() int { return c.size }

// Stats returns this endpoint's counters.
func (c *ChanTransport) Stats() *TransportStats { return &c.stats }

// Send delivers one frame to rank `to`.
func (c *ChanTransport) Send(to int, tag byte, payload []byte) error {
	if to < 0 || to >= c.size || to == c.rank {
		return fmt.Errorf("fabric: Send to invalid rank %d", to)
	}
	select {
	case <-c.closed:
		return ErrTransportClosed
	default:
	}
	// Copy the payload: a real wire serializes, so senders may reuse
	// their encode buffers the moment Send returns. The in-proc
	// transport must not silently weaken that contract. The copy lands
	// in a recycled buffer when the free list has one big enough
	// (too-small pops are dropped, so the list converges on
	// steady-state frame sizes).
	var p []byte
	if len(payload) > 0 {
		select {
		case b := <-c.free:
			if cap(b) >= len(payload) {
				p = append(b[:0], payload...)
			} else {
				p = append([]byte(nil), payload...)
			}
		default:
			p = append([]byte(nil), payload...)
		}
	}
	select {
	case c.mail[c.rank][to] <- chanFrame{tag: tag, payload: p}:
		c.stats.MessagesSent.Add(1)
		c.stats.BytesSent.Add(int64(len(payload)))
		return nil
	case <-c.closed:
		return ErrTransportClosed
	}
}

// Recv blocks for the next frame from rank `from`, delivery-first on
// close (same drain-first rule as Comm.Recv on abort). An armed Recv
// deadline (SetRecvDeadline) bounds the wait; delivery still wins over
// an already-passed deadline when a frame is queued.
func (c *ChanTransport) Recv(from int) (byte, []byte, error) {
	if from < 0 || from >= c.size || from == c.rank {
		return 0, nil, fmt.Errorf("fabric: Recv from invalid rank %d", from)
	}
	select {
	case f := <-c.mail[from][c.rank]:
		return c.delivered(f)
	default:
	}
	if d := c.dl[from].Load(); d != 0 {
		until := time.Until(time.Unix(0, d))
		if until <= 0 {
			return 0, nil, &RankDeadError{Rank: from, Err: os.ErrDeadlineExceeded}
		}
		tm := c.timers[from]
		if tm == nil {
			tm = time.NewTimer(until)
			c.timers[from] = tm
		} else {
			if !tm.Stop() {
				select {
				case <-tm.C:
				default:
				}
			}
			tm.Reset(until)
		}
		select {
		case f := <-c.mail[from][c.rank]:
			return c.delivered(f)
		case <-c.closed:
			return 0, nil, ErrTransportClosed
		case <-tm.C:
			return 0, nil, &RankDeadError{Rank: from, Err: os.ErrDeadlineExceeded}
		}
	}
	select {
	case f := <-c.mail[from][c.rank]:
		return c.delivered(f)
	case <-c.closed:
		return 0, nil, ErrTransportClosed
	}
}

func (c *ChanTransport) delivered(f chanFrame) (byte, []byte, error) {
	c.stats.MessagesRecv.Add(1)
	c.stats.BytesRecv.Add(int64(len(f.payload)))
	return f.tag, f.payload, nil
}

// SetRecvDeadline arms (zero time: clears) the Recv deadline for one
// peer. It applies to Recv calls entered after it returns — the
// dispatch path arms deadlines before kicking its receivers, so every
// guarded wait sees them.
func (c *ChanTransport) SetRecvDeadline(peer int, at time.Time) error {
	if peer < 0 || peer >= c.size || peer == c.rank {
		return fmt.Errorf("fabric: SetRecvDeadline on invalid rank %d", peer)
	}
	if at.IsZero() {
		c.dl[peer].Store(0)
	} else {
		c.dl[peer].Store(at.UnixNano())
	}
	return nil
}

// Recycle pushes buf onto the group's frame free list (dropped when the
// list is full). Receivers call it once a Recv payload is fully
// consumed; the buffer then backs a later Send's copy.
func (c *ChanTransport) Recycle(buf []byte) {
	if cap(buf) == 0 {
		return
	}
	select {
	case c.free <- buf:
	default:
	}
}

// Close tears down the whole group.
func (c *ChanTransport) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}

// ---------------------------------------------------------------------
// TCP transport
// ---------------------------------------------------------------------

// tcpHello is the tag of the rank-identification frame a worker sends
// right after dialing: [version:4 LE][rank:4 LE].
const tcpHello byte = 0xFF

// helloLen is the payload size of both hello flavors (tcpHello and
// starHello): a protocol version word plus an identity word.
const helloLen = 8

// encodeHello builds a hello payload announcing the protocol version
// and an identity word (rank for tcpHello, pid for starHello).
func encodeHello(id uint32) []byte {
	var p [helloLen]byte
	binary.LittleEndian.PutUint32(p[0:4], ProtocolVersion)
	binary.LittleEndian.PutUint32(p[4:8], id)
	return p[:]
}

// decodeHello validates a hello frame's shape and version, returning
// the identity word.
func decodeHello(kind string, tag, wantTag byte, payload []byte) (uint32, error) {
	if tag != wantTag || len(payload) != helloLen {
		return 0, fmt.Errorf("fabric: bad %s hello (tag %d, %d bytes)", kind, tag, len(payload))
	}
	if v := binary.LittleEndian.Uint32(payload[0:4]); v != ProtocolVersion {
		return 0, fmt.Errorf("fabric: %s hello speaks protocol %d, this master speaks %d", kind, v, ProtocolVersion)
	}
	return binary.LittleEndian.Uint32(payload[4:8]), nil
}

// TCPTransport is the cross-process Transport: length-prefixed tagged
// frames over one TCP connection per (master, worker) pair. The master
// endpoint holds size-1 accepted connections; a worker endpoint holds
// its single connection to the master. Workers can only exchange frames
// with rank 0 — the star topology is all the finegrain protocol needs.
type TCPTransport struct {
	rank   int
	size   int
	conns  []*tcpConn // indexed by peer rank; nil where no link exists
	ln     net.Listener
	closed atomic.Bool
	free   chan []byte // endpoint-wide frame buffer free list
	stats  TransportStats
}

type tcpConn struct {
	c    net.Conn
	rmu  sync.Mutex
	wmu  sync.Mutex
	rbuf [9]byte
	wbuf [9]byte
	free chan []byte // shared with the owning endpoint; may be nil
}

// ListenTCP creates the master endpoint: it listens on addr (use
// "127.0.0.1:0" for an ephemeral port, retrievable via Addr) and
// Accept waits for the size-1 workers to dial in and identify.
func ListenTCP(addr string, size int) (*TCPTransport, error) {
	if size < 2 {
		return nil, fmt.Errorf("fabric: TCP transport needs >= 2 ranks, got %d", size)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &TCPTransport{rank: 0, size: size, conns: make([]*tcpConn, size), ln: ln, free: make(chan []byte, 64)}, nil
}

// Addr returns the master's listen address (for spawning workers).
func (t *TCPTransport) Addr() string {
	if t.ln == nil {
		return ""
	}
	return t.ln.Addr().String()
}

// Accept blocks until every worker rank has connected and identified
// itself with a hello frame. Master-side only. Each accepted
// connection's hello read runs under HelloTimeout, so a dialer that
// connects and then wedges cannot block the world's formation forever.
func (t *TCPTransport) Accept() error {
	if t.ln == nil {
		return fmt.Errorf("fabric: Accept on a worker endpoint")
	}
	for n := 0; n < t.size-1; n++ {
		c, err := t.ln.Accept()
		if err != nil {
			return err
		}
		tc := &tcpConn{c: c, free: t.free}
		if HelloTimeout > 0 {
			c.SetReadDeadline(time.Now().Add(HelloTimeout))
		}
		tag, payload, err := tc.read()
		if err != nil {
			c.Close()
			return fmt.Errorf("fabric: worker hello: %w", err)
		}
		c.SetReadDeadline(time.Time{})
		id, err := decodeHello("worker", tag, tcpHello, payload)
		if err != nil {
			c.Close()
			return err
		}
		rank := int(id)
		if rank < 1 || rank >= t.size || t.conns[rank] != nil {
			c.Close()
			return fmt.Errorf("fabric: worker hello claims invalid or duplicate rank %d", rank)
		}
		t.conns[rank] = tc
	}
	return nil
}

// DialTCP creates worker endpoint `rank`, connecting to the master at
// addr — retrying with capped exponential backoff until DialTimeout,
// since workers routinely start before the master's listener exists —
// and identifying itself with a versioned hello.
func DialTCP(addr string, rank, size int) (*TCPTransport, error) {
	if rank < 1 || rank >= size {
		return nil, fmt.Errorf("fabric: worker rank %d outside [1, %d)", rank, size)
	}
	c, err := dialRetry(addr)
	if err != nil {
		return nil, err
	}
	t := &TCPTransport{rank: rank, size: size, conns: make([]*tcpConn, size), free: make(chan []byte, 64)}
	t.conns[0] = &tcpConn{c: c, free: t.free}
	if err := t.conns[0].write(tcpHello, encodeHello(uint32(rank))); err != nil {
		c.Close()
		return nil, err
	}
	return t, nil
}

// Rank returns this endpoint's rank.
func (t *TCPTransport) Rank() int { return t.rank }

// Size returns the group size.
func (t *TCPTransport) Size() int { return t.size }

// Stats returns this endpoint's counters.
func (t *TCPTransport) Stats() *TransportStats { return &t.stats }

func (t *TCPTransport) conn(peer int) (*tcpConn, error) {
	if peer < 0 || peer >= t.size || peer == t.rank {
		return nil, fmt.Errorf("fabric: invalid peer rank %d", peer)
	}
	c := t.conns[peer]
	if c == nil {
		return nil, fmt.Errorf("fabric: no link to rank %d (workers only talk to the master)", peer)
	}
	return c, nil
}

// peerError types a failed read/write on the link to `peer`: the
// endpoint's own Close yields ErrTransportClosed (the deliberate
// teardown every serve loop treats as a clean exit), and so does a
// vanished *master* seen from a worker — rank 0 dying IS the end of a
// star world. Everything else — EOF, connection reset, a killed worker
// process — becomes a typed RankDeadError the master can react to
// (mark the rank dead, re-stripe) instead of dying.
func (t *TCPTransport) peerError(peer int, err error) error {
	if t.closed.Load() || errors.Is(err, net.ErrClosed) {
		// Our own socket object was closed under a blocked call —
		// teardown, not peer death.
		return ErrTransportClosed
	}
	if t.rank != 0 && peer == 0 {
		return ErrTransportClosed
	}
	return &RankDeadError{Rank: peer, Err: err}
}

// Send delivers one frame to rank `to`. A broken link surfaces as a
// *RankDeadError carrying the peer's rank, not a process-fatal
// condition: the sender decides whether the rank's death is fatal.
func (t *TCPTransport) Send(to int, tag byte, payload []byte) error {
	c, err := t.conn(to)
	if err != nil {
		return err
	}
	if err := c.write(tag, payload); err != nil {
		return t.peerError(to, err)
	}
	t.stats.MessagesSent.Add(1)
	t.stats.BytesSent.Add(int64(len(payload)))
	return nil
}

// Recv blocks for the next frame from rank `from`. Peer death (EOF,
// reset) surfaces as *RankDeadError; this endpoint's own Close as
// ErrTransportClosed.
func (t *TCPTransport) Recv(from int) (byte, []byte, error) {
	c, err := t.conn(from)
	if err != nil {
		return 0, nil, err
	}
	tag, payload, err := c.read()
	if err != nil {
		return 0, nil, t.peerError(from, err)
	}
	t.stats.MessagesRecv.Add(1)
	t.stats.BytesRecv.Add(int64(len(payload)))
	return tag, payload, nil
}

// SetRecvDeadline arms (zero time: clears) the read deadline on the
// link to one peer. Unlike the chan transport it also interrupts a
// Recv already blocked in the kernel. Expiry surfaces through Recv as
// a RankDeadError wrapping os.ErrDeadlineExceeded.
func (t *TCPTransport) SetRecvDeadline(peer int, at time.Time) error {
	c, err := t.conn(peer)
	if err != nil {
		return err
	}
	return c.c.SetReadDeadline(at)
}

// Recycle pushes buf onto the endpoint's frame free list (dropped when
// the list is full); later reads reuse it for incoming payloads.
func (t *TCPTransport) Recycle(buf []byte) {
	if cap(buf) == 0 {
		return
	}
	select {
	case t.free <- buf:
	default:
	}
}

// Close shuts every connection (and the master's listener) down.
func (t *TCPTransport) Close() error {
	t.closed.Store(true)
	var first error
	if t.ln != nil {
		first = t.ln.Close()
	}
	for _, c := range t.conns {
		if c == nil {
			continue
		}
		if err := c.c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// maxFrameBytes bounds one frame; a length prefix beyond it means a
// corrupt or hostile stream, not a real message.
const maxFrameBytes = 1 << 30

// write sends one frame: [tag:1][len:4 LE][crc:4 LE][payload], the
// CRC32C covering tag, length and payload. Each write runs under
// WriteTimeout so a peer that stopped reading surfaces as an error
// here instead of a forever-blocked sender.
func (c *tcpConn) write(tag byte, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if WriteTimeout > 0 {
		c.c.SetWriteDeadline(time.Now().Add(WriteTimeout))
	}
	c.wbuf[0] = tag
	binary.LittleEndian.PutUint32(c.wbuf[1:5], uint32(len(payload)))
	crc := crc32.Update(0, castagnoli, c.wbuf[:5])
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(c.wbuf[5:9], crc)
	if _, err := c.c.Write(c.wbuf[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := c.c.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

func (c *tcpConn) read() (byte, []byte, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	if _, err := io.ReadFull(c.c, c.rbuf[:]); err != nil {
		return 0, nil, err
	}
	tag := c.rbuf[0]
	n := binary.LittleEndian.Uint32(c.rbuf[1:5])
	want := binary.LittleEndian.Uint32(c.rbuf[5:9])
	if n > maxFrameBytes {
		return 0, nil, fmt.Errorf("fabric: frame length %d exceeds limit", n)
	}
	// Reuse a recycled buffer when one is big enough; too-small pops
	// are dropped so the list converges on steady-state frame sizes.
	var payload []byte
	if n > 0 {
		select {
		case b := <-c.free:
			if cap(b) >= int(n) {
				payload = b[:n]
			} else {
				payload = make([]byte, n)
			}
		default:
			payload = make([]byte, n)
		}
		if _, err := io.ReadFull(c.c, payload); err != nil {
			return 0, nil, err
		}
	}
	crc := crc32.Update(0, castagnoli, c.rbuf[:5])
	crc = crc32.Update(crc, castagnoli, payload)
	if crc != want {
		corruptFrames.Add(1)
		return 0, nil, &FrameCorruptError{Tag: tag, Len: n, Want: want, Got: crc}
	}
	return tag, payload, nil
}
