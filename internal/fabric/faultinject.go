package fabric

import (
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"time"

	"raxml/internal/rng"
)

// This file is the deterministic fault-injection middleware the chaos
// harness drives: wrappers over Link, Transport and net.Conn that
// apply a *reproducible* schedule of failures — drop frame N, delay
// frame N by D, corrupt a frame, sever the connection after M frames,
// throttle every Kth frame — derived entirely from an integer seed.
// Any chaos failure therefore replays exactly by re-running with the
// printed seed; nothing about the injection depends on wall-clock time
// or scheduling.
//
// The corruption model deserves a note. Real corruption happens on the
// wire, *below* the CRC32C framing, and the hardened stack detects it
// there: the receiver's CRC check fails and the frame surfaces as a
// FrameCorruptError, never as delivered garbage. The Link/Transport
// wrappers sit *above* the framing, so they emulate the post-detection
// view — a corrupt incoming frame yields the FrameCorruptError the
// framing layer would have produced, and a corrupt outgoing frame
// severs the link the way the peer's failed CRC check would. Actually
// flipping payload bytes at this level would model an undetectable
// Byzantine fault no checksum can catch. FaultConn is the wrapper that
// flips real stream bytes beneath the framing, for exercising the CRC
// path itself on TCP sockets.

// FaultClass enumerates the injectable failure modes.
type FaultClass uint8

const (
	// FaultDrop makes one frame vanish in flight: the sender believes
	// it was delivered, the receiver never sees it. Detected by the
	// per-dispatch / handshake deadlines.
	FaultDrop FaultClass = iota
	// FaultDelay delivers one frame late by Fault.Delay.
	FaultDelay
	// FaultCorrupt mangles one frame on the wire. Surfaces as the
	// detection the CRC layer performs: a FrameCorruptError on an
	// incoming frame, a severed link on an outgoing one.
	FaultCorrupt
	// FaultSever kills the connection permanently after Fault.Frame
	// total frames (both directions combined).
	FaultSever
	// FaultStraggle throttles the endpoint: every plan.StraggleEvery-th
	// frame in either direction is delayed by plan.StraggleDelay,
	// modeling a slow rank rather than a dead one.
	FaultStraggle

	numFaultClasses
)

// String names the class for replay logs.
func (c FaultClass) String() string {
	switch c {
	case FaultDrop:
		return "drop"
	case FaultDelay:
		return "delay"
	case FaultCorrupt:
		return "corrupt"
	case FaultSever:
		return "sever"
	case FaultStraggle:
		return "straggle"
	}
	return fmt.Sprintf("fault(%d)", int(c))
}

// Fault is one scheduled injection: apply Class to the Frame-th frame
// (1-based) of the direction whose list it sits in.
type Fault struct {
	Class FaultClass
	Frame int64         // 1-based frame ordinal within its direction
	Delay time.Duration // FaultDelay only
}

// FaultPlan is a reproducible injection schedule for one link or peer:
// point faults keyed by frame ordinal per direction, plus an optional
// sever threshold and straggler throttle. The zero plan injects
// nothing.
type FaultPlan struct {
	// Seed identifies the plan for replay (RandomFaultPlan records it;
	// hand-built plans may leave it 0).
	Seed int64
	// Send faults apply to outgoing frames — master→worker when the
	// wrapped endpoint is the master side, the common arrangement.
	Send []Fault
	// Recv faults apply to incoming frames (worker→master partials,
	// acks, pongs).
	Recv []Fault
	// SeverAfter kills the connection once the combined send+recv
	// frame count reaches it (0: never).
	SeverAfter int64
	// StraggleEvery/StraggleDelay throttle every StraggleEvery-th
	// frame in either direction by StraggleDelay (0: no throttle).
	StraggleEvery int64
	StraggleDelay time.Duration
}

// String renders the schedule compactly for failure messages, so a
// chaos log shows exactly which injections were live.
func (p *FaultPlan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan{seed %d", p.Seed)
	for _, f := range p.Send {
		fmt.Fprintf(&b, ", send[%d]=%s", f.Frame, describeFault(f))
	}
	for _, f := range p.Recv {
		fmt.Fprintf(&b, ", recv[%d]=%s", f.Frame, describeFault(f))
	}
	if p.SeverAfter > 0 {
		fmt.Fprintf(&b, ", sever@%d", p.SeverAfter)
	}
	if p.StraggleEvery > 0 {
		fmt.Fprintf(&b, ", straggle %v/%d", p.StraggleDelay, p.StraggleEvery)
	}
	b.WriteString("}")
	return b.String()
}

func describeFault(f Fault) string {
	if f.Class == FaultDelay {
		return fmt.Sprintf("delay %v", f.Delay)
	}
	return f.Class.String()
}

// RandomFaultPlan derives a deterministic schedule from seed: one to
// three point faults (drop, delay, corrupt) over the first few hundred
// frames, sometimes a sever, sometimes a straggler throttle. Two calls
// with equal seeds build identical plans — the property that makes a
// chaos failure replayable from the seed alone.
func RandomFaultPlan(seed int64) *FaultPlan {
	r := rng.New(seed)
	p := &FaultPlan{Seed: seed}
	for i, n := 0, 1+r.Intn(3); i < n; i++ {
		f := Fault{Frame: int64(1 + r.Intn(300))}
		switch r.Intn(3) {
		case 0:
			f.Class = FaultDrop
		case 1:
			f.Class = FaultDelay
			f.Delay = time.Duration(1+r.Intn(20)) * time.Millisecond
		default:
			f.Class = FaultCorrupt
		}
		if r.Intn(2) == 0 {
			p.Send = append(p.Send, f)
		} else {
			p.Recv = append(p.Recv, f)
		}
	}
	if r.Intn(3) == 0 {
		p.SeverAfter = int64(20 + r.Intn(500))
	}
	if r.Intn(3) == 0 {
		p.StraggleEvery = int64(4 + r.Intn(12))
		p.StraggleDelay = time.Duration(200+r.Intn(1800)) * time.Microsecond
	}
	return p
}

// fault returns the point fault scheduled for frame ordinal n in one
// direction's list (nil if none). Plans are tiny, so a linear scan per
// frame costs nothing.
func fault(fs []Fault, n int64) *Fault {
	for i := range fs {
		if fs[i].Frame == n {
			return &fs[i]
		}
	}
	return nil
}

// FaultStats counts injections by class, so harnesses can assert the
// schedule actually fired.
type FaultStats struct {
	counts [numFaultClasses]atomic.Int64
}

// Count returns the number of injections of one class.
func (s *FaultStats) Count(c FaultClass) int64 {
	if int(c) >= len(s.counts) {
		return 0
	}
	return s.counts[c].Load()
}

// Total returns the number of injections across all classes.
func (s *FaultStats) Total() int64 {
	var t int64
	for i := range s.counts {
		t += s.counts[i].Load()
	}
	return t
}

// String summarizes fired injections for logs.
func (s *FaultStats) String() string {
	var parts []string
	for c := FaultClass(0); c < numFaultClasses; c++ {
		if n := s.counts[c].Load(); n > 0 {
			parts = append(parts, fmt.Sprintf("%s:%d", c, n))
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, " ")
}

// ---------------------------------------------------------------------
// Link middleware
// ---------------------------------------------------------------------

// FaultLink wraps a Link with a FaultPlan. It is meant for the master
// side of a worker link (grid.Fleet.LinkWrapper): its Send direction
// is master→worker, its Recv direction worker→master.
type FaultLink struct {
	inner Link
	plan  *FaultPlan
	stats FaultStats

	sent, recvd, total atomic.Int64
	severed            atomic.Bool
}

// InjectFaults wraps l so frames flowing through it suffer plan's
// schedule. The wrapper forwards deadlines and Close to l.
func InjectFaults(l Link, plan *FaultPlan) *FaultLink {
	if plan == nil {
		plan = &FaultPlan{}
	}
	return &FaultLink{inner: l, plan: plan}
}

// InjectStats exposes the injection counters.
func (l *FaultLink) InjectStats() *FaultStats { return &l.stats }

// Plan returns the schedule this link runs.
func (l *FaultLink) Plan() *FaultPlan { return l.plan }

// sever closes the underlying link, emulating the peer machine
// vanishing: both ends' pending and future calls fail, exactly like a
// SIGKILLed worker's socket.
func (l *FaultLink) sever() {
	if l.severed.CompareAndSwap(false, true) {
		l.stats.counts[FaultSever].Add(1)
		l.inner.Close()
	}
}

// tick advances the combined frame counter, applying the sever
// threshold and the straggler throttle shared by both directions; it
// reports false once the link is severed.
func (l *FaultLink) tick() bool {
	n := l.total.Add(1)
	if sa := l.plan.SeverAfter; sa > 0 && n >= sa {
		l.sever()
		return false
	}
	if se := l.plan.StraggleEvery; se > 0 && n%se == 0 {
		l.stats.counts[FaultStraggle].Add(1)
		time.Sleep(l.plan.StraggleDelay)
	}
	return true
}

// Send delivers one frame to the peer, subject to the plan.
func (l *FaultLink) Send(tag byte, payload []byte) error {
	// A severing tick closes the inner link; the Send below then fails
	// the way writing to a vanished peer does.
	l.tick()
	n := l.sent.Add(1)
	if f := fault(l.plan.Send, n); f != nil {
		switch f.Class {
		case FaultDrop:
			// The frame vanishes in flight: the sender sees success.
			l.stats.counts[FaultDrop].Add(1)
			return nil
		case FaultDelay:
			l.stats.counts[FaultDelay].Add(1)
			time.Sleep(f.Delay)
		case FaultCorrupt:
			// The peer's CRC check rejects the mangled frame and treats
			// the stream as dead; emulate that verdict by severing. The
			// frame itself never arrives.
			l.stats.counts[FaultCorrupt].Add(1)
			corruptFrames.Add(1)
			l.sever()
		}
	}
	return l.inner.Send(tag, payload)
}

// Recv blocks for the peer's next frame, subject to the plan.
func (l *FaultLink) Recv() (byte, []byte, error) {
	for {
		tag, payload, err := l.inner.Recv()
		if err != nil {
			return 0, nil, err
		}
		if !l.tick() {
			// The frame crossing the sever threshold goes down with the
			// connection; the caller sees the dead link, not the data.
			return 0, nil, ErrTransportClosed
		}
		n := l.recvd.Add(1)
		f := fault(l.plan.Recv, n)
		if f == nil {
			return tag, payload, nil
		}
		switch f.Class {
		case FaultDrop:
			// Lost in flight: discard and wait for the next frame.
			l.stats.counts[FaultDrop].Add(1)
			continue
		case FaultDelay:
			l.stats.counts[FaultDelay].Add(1)
			time.Sleep(f.Delay)
			return tag, payload, nil
		case FaultCorrupt:
			// Surface the framing layer's verdict on a mangled frame.
			l.stats.counts[FaultCorrupt].Add(1)
			corruptFrames.Add(1)
			return 0, nil, &FrameCorruptError{Tag: tag, Len: uint32(len(payload))}
		default:
			return tag, payload, nil
		}
	}
}

// SetRecvDeadline forwards to the wrapped link, so the hardened
// stack's deadlines keep working under injection.
func (l *FaultLink) SetRecvDeadline(at time.Time) error {
	if SetLinkRecvDeadline(l.inner, at) {
		return nil
	}
	return fmt.Errorf("fabric: wrapped link has no Recv deadline")
}

// Close tears the wrapped link down.
func (l *FaultLink) Close() error { return l.inner.Close() }

// ---------------------------------------------------------------------
// Transport middleware
// ---------------------------------------------------------------------

// FaultTransport wraps a Transport with per-peer FaultPlans — the
// fixed-world twin of FaultLink, for fine-grain tests that run over a
// ChanTransport or TCPTransport directly. Peers without a plan pass
// through untouched. A severed peer stays severed: unlike FaultLink it
// cannot close just one peer's half of a shared endpoint, so it fails
// that peer's calls with a RankDeadError instead.
type FaultTransport struct {
	inner Transport
	plans map[int]*FaultPlan
	stats FaultStats

	peers map[int]*peerFaultState
}

type peerFaultState struct {
	sent, recvd, total atomic.Int64
	severed            atomic.Bool
}

// InjectTransportFaults wraps tr; frames to/from each peer in plans
// suffer that peer's schedule.
func InjectTransportFaults(tr Transport, plans map[int]*FaultPlan) *FaultTransport {
	peers := make(map[int]*peerFaultState, len(plans))
	for p := range plans {
		peers[p] = &peerFaultState{}
	}
	return &FaultTransport{inner: tr, plans: plans, peers: peers}
}

// InjectStats exposes the injection counters (all peers combined);
// Stats stays the Transport-interface passthrough.
func (t *FaultTransport) InjectStats() *FaultStats { return &t.stats }

// Rank returns the wrapped endpoint's rank.
func (t *FaultTransport) Rank() int { return t.inner.Rank() }

// Size returns the wrapped endpoint's group size.
func (t *FaultTransport) Size() int { return t.inner.Size() }

// Stats returns the wrapped endpoint's transport counters.
func (t *FaultTransport) Stats() *TransportStats { return t.inner.Stats() }

// Close closes the wrapped endpoint.
func (t *FaultTransport) Close() error { return t.inner.Close() }

// Recycle forwards buffer recycling so the wrapped transport's free
// lists keep working.
func (t *FaultTransport) Recycle(buf []byte) { Recycle(t.inner, buf) }

// SetRecvDeadline forwards per-peer deadlines.
func (t *FaultTransport) SetRecvDeadline(peer int, at time.Time) error {
	if SetRecvDeadline(t.inner, peer, at) {
		return nil
	}
	return fmt.Errorf("fabric: wrapped transport has no Recv deadlines")
}

// errSevered backs the injected peer-death errors.
var errSevered = fmt.Errorf("fabric: connection severed by fault injection")

func (t *FaultTransport) tick(peer int, st *peerFaultState, plan *FaultPlan) bool {
	n := st.total.Add(1)
	if sa := plan.SeverAfter; sa > 0 && n >= sa {
		if st.severed.CompareAndSwap(false, true) {
			t.stats.counts[FaultSever].Add(1)
		}
		return false
	}
	if se := plan.StraggleEvery; se > 0 && n%se == 0 {
		t.stats.counts[FaultStraggle].Add(1)
		time.Sleep(plan.StraggleDelay)
	}
	return true
}

// Send delivers one frame to peer `to`, subject to its plan.
func (t *FaultTransport) Send(to int, tag byte, payload []byte) error {
	plan := t.plans[to]
	if plan == nil {
		return t.inner.Send(to, tag, payload)
	}
	st := t.peers[to]
	if st.severed.Load() || !t.tick(to, st, plan) {
		return &RankDeadError{Rank: to, Err: errSevered}
	}
	n := st.sent.Add(1)
	if f := fault(plan.Send, n); f != nil {
		switch f.Class {
		case FaultDrop:
			t.stats.counts[FaultDrop].Add(1)
			return nil
		case FaultDelay:
			t.stats.counts[FaultDelay].Add(1)
			time.Sleep(f.Delay)
		case FaultCorrupt:
			t.stats.counts[FaultCorrupt].Add(1)
			corruptFrames.Add(1)
			st.severed.Store(true)
			return &RankDeadError{Rank: to, Err: errSevered}
		}
	}
	return t.inner.Send(to, tag, payload)
}

// Recv blocks for the next frame from peer `from`, subject to its plan.
func (t *FaultTransport) Recv(from int) (byte, []byte, error) {
	plan := t.plans[from]
	if plan == nil {
		return t.inner.Recv(from)
	}
	st := t.peers[from]
	for {
		if st.severed.Load() {
			return 0, nil, &RankDeadError{Rank: from, Err: errSevered}
		}
		tag, payload, err := t.inner.Recv(from)
		if err != nil {
			return 0, nil, err
		}
		if !t.tick(from, st, plan) {
			return 0, nil, &RankDeadError{Rank: from, Err: errSevered}
		}
		n := st.recvd.Add(1)
		f := fault(plan.Recv, n)
		if f == nil {
			return tag, payload, nil
		}
		switch f.Class {
		case FaultDrop:
			t.stats.counts[FaultDrop].Add(1)
			continue
		case FaultDelay:
			t.stats.counts[FaultDelay].Add(1)
			time.Sleep(f.Delay)
			return tag, payload, nil
		case FaultCorrupt:
			t.stats.counts[FaultCorrupt].Add(1)
			corruptFrames.Add(1)
			return 0, nil, &RankDeadError{Rank: from, Err: &FrameCorruptError{Tag: tag, Len: uint32(len(payload))}}
		default:
			return tag, payload, nil
		}
	}
}

// ---------------------------------------------------------------------
// Wire-level corruption
// ---------------------------------------------------------------------

// FaultConn wraps a net.Conn and flips one byte at chosen absolute
// offsets of the incoming byte stream — corruption *below* the framing
// layer, which is exactly what the per-frame CRC32C exists to catch.
// Offsets are stream positions, so the corruption is deterministic
// regardless of how reads are chunked.
type FaultConn struct {
	net.Conn
	// CorruptAt holds absolute read-stream offsets whose byte is
	// XOR-flipped (0x80) as it passes through.
	CorruptAt []int64

	off     int64
	Flipped atomic.Int64 // bytes actually flipped so far
}

// Read fills p from the wrapped connection, flipping any byte whose
// stream offset is scheduled.
func (c *FaultConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		lo := c.off
		c.off += int64(n)
		for _, at := range c.CorruptAt {
			if at >= lo && at < c.off {
				p[at-lo] ^= 0x80
				c.Flipped.Add(1)
			}
		}
	}
	return n, err
}
