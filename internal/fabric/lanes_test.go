package fabric

import (
	"errors"
	"sync"
	"testing"
)

// TestLanesScatterCollect drives one scatter/kick/await round over an
// in-proc star and checks every rank echoes through its own lane.
func TestLanesScatterCollect(t *testing.T) {
	const ranks = 4
	trs := NewChanTransports(ranks)
	var wg sync.WaitGroup
	for r := 1; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tag, payload, err := trs[r].Recv(0)
			if err != nil {
				t.Errorf("rank %d recv: %v", r, err)
				return
			}
			reply := append([]byte{byte(r)}, payload...)
			if err := trs[r].Send(0, tag+1, reply); err != nil {
				t.Errorf("rank %d send: %v", r, err)
			}
		}(r)
	}

	l := NewLanes(trs[0])
	l.Scatter(7, []byte("job"))
	l.KickAll()
	for r := 1; r < ranks; r++ {
		res := l.Await(r)
		if res.Err != nil {
			t.Fatalf("rank %d await: %v", r, res.Err)
		}
		if res.Tag != 8 || string(res.Payload) != string(byte(r))+"job" {
			t.Fatalf("rank %d got tag=%d payload=%q", r, res.Tag, res.Payload)
		}
		if err := l.SendErr(r); err != nil {
			t.Fatalf("rank %d send lane: %v", r, err)
		}
	}
	l.Close()
	wg.Wait()
	trs[0].Close()
}

// TestLanesOutOfOrderArrivalsPark has rank 2 reply before rank 1 and
// checks the fold can still consume rank 1 first: rank 2's result
// parks in its lane mailbox until awaited.
func TestLanesOutOfOrderArrivalsPark(t *testing.T) {
	trs := NewChanTransports(3)
	rank1Go := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // rank 1: reply only after rank 2's reply was parked
		defer wg.Done()
		_, _, err := trs[1].Recv(0)
		if err != nil {
			t.Errorf("rank 1 recv: %v", err)
			return
		}
		<-rank1Go
		_ = trs[1].Send(0, 9, []byte{1})
	}()
	go func() { // rank 2: reply immediately
		defer wg.Done()
		_, _, err := trs[2].Recv(0)
		if err != nil {
			t.Errorf("rank 2 recv: %v", err)
			return
		}
		_ = trs[2].Send(0, 9, []byte{2})
	}()

	l := NewLanes(trs[0])
	l.Scatter(7, nil)
	l.KickAll()
	close(rank1Go)
	for r := 1; r < 3; r++ {
		res := l.Await(r)
		if res.Err != nil || len(res.Payload) != 1 || res.Payload[0] != byte(r) {
			t.Fatalf("rank %d fold got %+v", r, res)
		}
	}
	l.Close()
	wg.Wait()
	trs[0].Close()
}

// deadSendTransport wraps a Transport and fails every frame touching
// one rank — Send and Recv both, the way a severed link fails.
type deadSendTransport struct {
	Transport
	dead int
}

func (d *deadSendTransport) Send(to int, tag byte, payload []byte) error {
	if to == d.dead {
		return &RankDeadError{Rank: to, Err: errors.New("severed")}
	}
	return d.Transport.Send(to, tag, payload)
}

func (d *deadSendTransport) Recv(from int) (byte, []byte, error) {
	if from == d.dead {
		return 0, nil, &RankDeadError{Rank: from, Err: errors.New("severed")}
	}
	return d.Transport.Recv(from)
}

// TestLanesDeadLaneDropsAndReports severs rank 1's link and checks the
// lane records a typed RankDeadError, keeps dropping later frames, and
// never wedges the healthy rank 2 lane.
func TestLanesDeadLaneDropsAndReports(t *testing.T) {
	trs := NewChanTransports(3)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // rank 2 stays healthy
		defer wg.Done()
		for i := 0; i < 2; i++ {
			if _, _, err := trs[2].Recv(0); err != nil {
				t.Errorf("rank 2 recv: %v", err)
				return
			}
			_ = trs[2].Send(0, 9, nil)
		}
	}()

	l := NewLanes(&deadSendTransport{Transport: trs[0], dead: 1})
	for i := 0; i < 2; i++ { // second round proves the dead lane still accepts (and drops) frames
		l.Scatter(7, []byte("x"))
		l.KickAll()
		r1, r2 := l.Await(1), l.Await(2)
		if r1.Err == nil {
			t.Fatal("severed rank 1 recv reported no error")
		}
		if r2.Err != nil {
			t.Fatalf("healthy rank 2 broke: %v", r2.Err)
		}
	}
	err := l.SendErr(1)
	if err == nil {
		t.Fatal("severed rank 1 send lane reported no error")
	}
	if dead := AsRankDead(err); dead == nil || dead.Rank != 1 {
		t.Fatalf("lane error is not a RankDeadError for rank 1: %v", err)
	}
	if err := l.SendErr(2); err != nil {
		t.Fatalf("healthy rank 2 send lane: %v", err)
	}
	l.Close()
	wg.Wait()
	trs[0].Close()
}

// TestLanesDoubleBufferBackpressure checks Send blocks only when both
// lane slots are busy: with a worker that never reads, two queued
// frames must not block the producer (one in flight inside Send, one
// queued), which is the overlap window the dispatch pipeline relies on.
func TestLanesDoubleBufferBackpressure(t *testing.T) {
	trs := NewChanTransports(2)
	l := NewLanes(trs[0])
	done := make(chan struct{})
	go func() {
		defer close(done)
		l.Send(1, 7, []byte("a")) // in flight: parked in the chan transport's link buffer or Send
		l.Send(1, 7, []byte("b")) // queued in the lane slot
	}()
	<-done // both sends must return without any reader on rank 1
	for _, want := range []string{"a", "b"} {
		_, payload, err := trs[1].Recv(0)
		if err != nil || string(payload) != want {
			t.Fatalf("got %q err=%v, want %q", payload, err, want)
		}
	}
	l.Close()
	trs[0].Close()
}
