package fabric

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunAllRanksExecute(t *testing.T) {
	var count int32
	err := Run(8, func(c *Comm) error {
		atomic.AddInt32(&count, 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 8 {
		t.Fatalf("%d ranks executed, want 8", count)
	}
}

func TestRankAndSize(t *testing.T) {
	seen := make([]int32, 5)
	err := Run(5, func(c *Comm) error {
		if c.Size() != 5 {
			return fmt.Errorf("size = %d", c.Size())
		}
		atomic.AddInt32(&seen[c.Rank()], 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, n := range seen {
		if n != 1 {
			t.Fatalf("rank %d executed %d times", r, n)
		}
	}
}

func TestRunRejectsBadSize(t *testing.T) {
	if err := Run(0, func(c *Comm) error { return nil }); err == nil {
		t.Fatal("accepted world size 0")
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	const p = 6
	var before, after int32
	err := Run(p, func(c *Comm) error {
		atomic.AddInt32(&before, 1)
		if err := c.Barrier(); err != nil {
			return err
		}
		// After the barrier, every rank must have incremented before.
		if got := atomic.LoadInt32(&before); got != p {
			return fmt.Errorf("rank %d passed barrier with before=%d", c.Rank(), got)
		}
		atomic.AddInt32(&after, 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if after != p {
		t.Fatalf("after = %d, want %d", after, p)
	}
}

func TestBarrierReusable(t *testing.T) {
	var sum int64
	err := Run(4, func(c *Comm) error {
		for i := 0; i < 100; i++ {
			if err := c.Barrier(); err != nil {
				return err
			}
			atomic.AddInt64(&sum, 1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum != 400 {
		t.Fatalf("sum = %d, want 400", sum)
	}
}

func TestBcast(t *testing.T) {
	results := make([]string, 7)
	err := Run(7, func(c *Comm) error {
		local := fmt.Sprintf("tree-from-rank-%d", c.Rank())
		got, err := Bcast(c, 3, local)
		if err != nil {
			return err
		}
		results[c.Rank()] = got
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, v := range results {
		if v != "tree-from-rank-3" {
			t.Fatalf("rank %d received %q", r, v)
		}
	}
}

func TestBcastInvalidRoot(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		_, err := Bcast(c, 5, 1)
		return err
	})
	if err == nil {
		t.Fatal("Bcast accepted invalid root")
	}
}

func TestGatherOrderedByRank(t *testing.T) {
	err := Run(6, func(c *Comm) error {
		vals, err := Gather(c, c.Rank()*10)
		if err != nil {
			return err
		}
		for i, v := range vals {
			if v != i*10 {
				return fmt.Errorf("vals[%d] = %d", i, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceMinLoc(t *testing.T) {
	// values: rank 0 → 5.0, rank 1 → 2.0, rank 2 → 2.0, rank 3 → 7.0
	// min is 2.0, held first by rank 1.
	vals := []float64{5, 2, 2, 7}
	err := Run(4, func(c *Comm) error {
		v, loc, err := c.AllreduceMinLoc(vals[c.Rank()])
		if err != nil {
			return err
		}
		if v != 2 || loc != 1 {
			return fmt.Errorf("rank %d got (%g, %d), want (2, 1)", c.Rank(), v, loc)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceMaxLoc(t *testing.T) {
	vals := []float64{-134170.79, -134160.23, -134154.49, -134200.0}
	err := Run(4, func(c *Comm) error {
		v, loc, err := c.AllreduceMaxLoc(vals[c.Rank()])
		if err != nil {
			return err
		}
		if v != -134154.49 || loc != 2 {
			return fmt.Errorf("got (%g, %d), want (-134154.49, 2)", v, loc)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceSum(t *testing.T) {
	err := Run(5, func(c *Comm) error {
		s, err := c.AllreduceSum(float64(c.Rank()))
		if err != nil {
			return err
		}
		if s != 10 {
			return fmt.Errorf("sum = %g, want 10", s)
		}
		n, err := c.AllreduceSumInt(2)
		if err != nil {
			return err
		}
		if n != 10 {
			return fmt.Errorf("int sum = %d, want 10", n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvFIFO(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < 50; i++ {
				if err := c.Send(1, i); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < 50; i++ {
			v, err := c.Recv(0)
			if err != nil {
				return err
			}
			if v.(int) != i {
				return fmt.Errorf("received %v, want %d (FIFO violated)", v, i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvPairsIsolated(t *testing.T) {
	// Messages from different senders must not interleave into the
	// wrong per-sender stream.
	err := Run(3, func(c *Comm) error {
		switch c.Rank() {
		case 0, 1:
			for i := 0; i < 20; i++ {
				if err := c.Send(2, c.Rank()*1000+i); err != nil {
					return err
				}
			}
			return nil
		default:
			for i := 0; i < 20; i++ {
				v, err := c.Recv(0)
				if err != nil {
					return err
				}
				if v.(int) != i {
					return fmt.Errorf("stream from rank 0 corrupted: %v", v)
				}
			}
			for i := 0; i < 20; i++ {
				v, err := c.Recv(1)
				if err != nil {
					return err
				}
				if v.(int) != 1000+i {
					return fmt.Errorf("stream from rank 1 corrupted: %v", v)
				}
			}
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendInvalidRank(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(9, "x")
		}
		return nil
	})
	if err == nil {
		t.Fatal("Send to invalid rank accepted")
	}
}

func TestErrorAbortsWorld(t *testing.T) {
	start := time.Now()
	err := Run(4, func(c *Comm) error {
		if c.Rank() == 2 {
			return errors.New("simulated rank failure")
		}
		// Other ranks block on a barrier that can never complete; the
		// abort must unblock them.
		if err := c.Barrier(); err != nil {
			return err
		}
		return nil
	})
	if err == nil {
		t.Fatal("Run swallowed rank failure")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("abort did not unblock barrier promptly")
	}
}

func TestPanicIsCaptured(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		if c.Rank() == 1 {
			panic("kaboom")
		}
		return c.Barrier()
	})
	if err == nil {
		t.Fatal("Run swallowed rank panic")
	}
}

func TestAbortUnblocksRecv(t *testing.T) {
	start := time.Now()
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			return errors.New("die early")
		}
		_, err := c.Recv(0) // nothing ever sent
		return err
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("abort did not unblock Recv promptly")
	}
}

func TestCollectivesDeterministicAcrossRuns(t *testing.T) {
	run := func() []float64 {
		out := make([]float64, 6)
		err := Run(6, func(c *Comm) error {
			// Several rounds of collectives with rank-dependent values.
			v := float64(c.Rank()) * 1.5
			for round := 0; round < 10; round++ {
				sum, err := c.AllreduceSum(v)
				if err != nil {
					return err
				}
				v = sum/6 + float64(c.Rank())
			}
			out[c.Rank()] = v
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	first := run()
	for trial := 0; trial < 20; trial++ {
		got := run()
		for r := range got {
			if got[r] != first[r] {
				t.Fatalf("trial %d rank %d: %v != %v (nondeterministic collective)", trial, r, got[r], first[r])
			}
		}
	}
}

func TestManyRanks(t *testing.T) {
	// The paper's useful range tops out near 20 ranks (Table 2), but the
	// fabric itself should scale beyond that.
	err := Run(64, func(c *Comm) error {
		v, loc, err := c.AllreduceMinLoc(float64(64 - c.Rank()))
		if err != nil {
			return err
		}
		if v != 1 || loc != 63 {
			return fmt.Errorf("got (%g,%d)", v, loc)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBarrier(b *testing.B) {
	for _, p := range []int{2, 5, 10, 20} {
		b.Run(fmt.Sprintf("ranks=%d", p), func(b *testing.B) {
			err := Run(p, func(c *Comm) error {
				for i := 0; i < b.N; i++ {
					if err := c.Barrier(); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkBcast(b *testing.B) {
	err := Run(10, func(c *Comm) error {
		payload := "((a,b),(c,d));"
		for i := 0; i < b.N; i++ {
			if _, err := Bcast(c, 0, payload); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}
