package fabric

import (
	"context"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
)

// Lanes turns a star Transport endpoint into a set of per-rank
// send/receive lanes so one dispatch overlaps across ranks: queueing a
// frame into a lane returns as soon as the lane has a free slot (each
// lane holds one frame in flight inside Transport.Send plus one queued
// — a double buffer), so the master encodes the next fragment, fills
// the next P-matrix chunk, or runs its own stripe while earlier frames
// are still being copied or written to sockets. Receive lanes are
// kick-driven: each Kick makes the lane perform exactly one Recv and
// park the result in a one-slot mailbox until Await claims it, which is
// what lets a rank-ordered reduction fold arrivals in rank order while
// out-of-order partials sit parked in their lanes. Between a matched
// Kick/Await pair no lane goroutine touches the transport, so protocol
// handshakes (release, ping, shutdown) keep using the Transport
// directly.
//
// Error model: a failed Send marks the lane dead and subsequent frames
// for it are dropped unread; SendErr exposes the first error (typed
// RankDeadError on real transports) so the caller can surface it after
// draining every lane. Recv errors travel inside the LaneResult.
//
// Lane goroutines carry pprof labels ("rank", "lane"=send|recv) so CPU
// profiles attribute transport time per rank.
type Lanes struct {
	tr   Transport
	send []chan laneSend
	kick []chan struct{}
	res  []chan LaneResult
	errs []atomic.Pointer[laneErr]
	wg   sync.WaitGroup
}

type laneSend struct {
	tag     byte
	payload []byte
}

// LaneResult is one parked arrival: the frame a receive lane read after
// a Kick, or the error the Recv returned.
type LaneResult struct {
	Tag     byte
	Payload []byte
	Err     error
}

type laneErr struct{ err error }

// NewLanes starts one send and one receive lane for every peer rank of
// tr (tr must be the master endpoint, rank 0). Close releases them.
func NewLanes(tr Transport) *Lanes {
	size := tr.Size()
	l := &Lanes{
		tr:   tr,
		send: make([]chan laneSend, size),
		kick: make([]chan struct{}, size),
		res:  make([]chan LaneResult, size),
		errs: make([]atomic.Pointer[laneErr], size),
	}
	for r := 1; r < size; r++ {
		l.send[r] = make(chan laneSend, 1)
		l.kick[r] = make(chan struct{}, 1)
		l.res[r] = make(chan LaneResult, 1)
		l.wg.Add(2)
		go l.runSender(r)
		go l.runReceiver(r)
	}
	return l
}

func (l *Lanes) runSender(r int) {
	defer l.wg.Done()
	pprof.Do(context.Background(), pprof.Labels("rank", strconv.Itoa(r), "lane", "send"), func(context.Context) {
		for s := range l.send[r] {
			if l.errs[r].Load() != nil {
				continue // lane is dead: drop the frame unread
			}
			if err := l.tr.Send(r, s.tag, s.payload); err != nil {
				l.errs[r].Store(&laneErr{err: err})
			}
		}
	})
}

func (l *Lanes) runReceiver(r int) {
	defer l.wg.Done()
	pprof.Do(context.Background(), pprof.Labels("rank", strconv.Itoa(r), "lane", "recv"), func(context.Context) {
		for range l.kick[r] {
			tag, payload, err := l.tr.Recv(r)
			l.res[r] <- LaneResult{Tag: tag, Payload: payload, Err: err}
		}
	})
}

// Send queues one frame on rank r's send lane, blocking only while both
// lane slots (queued + in flight) are full. The payload slice is read
// by the lane goroutine: the caller must not overwrite its bytes until
// the dispatch's collect barrier confirms the rank consumed it (a dead
// lane drops frames without reading them, so overwriting after the
// barrier is safe even for failed ranks).
func (l *Lanes) Send(r int, tag byte, payload []byte) {
	l.send[r] <- laneSend{tag: tag, payload: payload}
}

// Scatter queues the same frame on every lane.
func (l *Lanes) Scatter(tag byte, payload []byte) {
	for r := 1; r < len(l.send); r++ {
		l.Send(r, tag, payload)
	}
}

// SendErr returns the first send failure on rank r's lane (nil if the
// lane is healthy).
func (l *Lanes) SendErr(r int) error {
	if e := l.errs[r].Load(); e != nil {
		return e.err
	}
	return nil
}

// Kick arms rank r's receive lane for exactly one Recv. Every Kick must
// be matched by an Await before the next Kick of the same rank.
func (l *Lanes) Kick(r int) {
	l.kick[r] <- struct{}{}
}

// KickAll arms every receive lane.
func (l *Lanes) KickAll() {
	for r := 1; r < len(l.kick); r++ {
		l.Kick(r)
	}
}

// Await blocks until rank r's kicked Recv completes and returns the
// parked result.
func (l *Lanes) Await(r int) LaneResult {
	return <-l.res[r]
}

// Close shuts every lane down and waits for the goroutines to exit.
// All Kicks must have been matched by Awaits first.
func (l *Lanes) Close() {
	for r := 1; r < len(l.send); r++ {
		close(l.send[r])
		close(l.kick[r])
	}
	l.wg.Wait()
}
