package fabric

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the membership layer beneath the coarse×fine grid
// scheduler (internal/grid): point-to-point framed links between one
// master and a *dynamic* set of workers. The fixed-size star of
// TCPTransport fits a one-shot fine-grain run, where the world's rank
// count is known before anything starts; the grid instead leases
// workers to jobs, loses workers to failures, and admits late joiners
// — so its unit is the single Link, not a sized world.
//
// Two implementations ship, mirroring the Transport pair:
//
//   - LinkPair: an in-proc connected pair of endpoints over buffered
//     channels. Closing either end kills both (a dead process cannot
//     half-close), which is exactly the semantics chaos tests need to
//     simulate a SIGKILLed worker.
//
//   - TCPLink: one framed TCP connection, same [tag:1][len:4 LE] wire
//     format as TCPTransport. The master side comes from
//     StarListener.AcceptLink, the worker side from DialStar.
//
// A worker serves its link through WorkerTransport, a 2-rank Transport
// view (master = rank 0, self = rank 1), so finegrain's serve loop
// runs unchanged over either membership style.

// Link is one framed duplex connection between a master and a worker.
// Send and Recv may each be used by one goroutine at a time.
type Link interface {
	// Send delivers one tagged frame to the peer.
	Send(tag byte, payload []byte) error
	// Recv blocks for the peer's next frame.
	Recv() (tag byte, payload []byte, err error)
	// Close tears the link down; both ends' blocked and future calls
	// fail.
	Close() error
}

// LinkDeadliner is implemented by links that can bound Recv waits —
// the link-level twin of the Transport PeerDeadliner. The zero time
// clears the deadline.
type LinkDeadliner interface {
	SetRecvDeadline(at time.Time) error
}

// SetLinkRecvDeadline arms (zero time: clears) l's Recv deadline when
// the link supports one, reporting whether it did. Expiry surfaces
// from Recv with os.ErrDeadlineExceeded in the error chain — raw, not
// RankDead-typed: a link does not know which rank it is, so the
// caller (the grid's sub-transport, the fleet's probe) supplies that
// judgment.
func SetLinkRecvDeadline(l Link, at time.Time) bool {
	d, ok := l.(LinkDeadliner)
	if !ok {
		return false
	}
	return d.SetRecvDeadline(at) == nil
}

// ---------------------------------------------------------------------
// In-proc channel link
// ---------------------------------------------------------------------

type chanLink struct {
	in     <-chan chanFrame
	out    chan<- chanFrame
	closed chan struct{}
	once   *sync.Once

	dl    atomic.Int64 // armed Recv deadline (UnixNano; 0 = none)
	timer *time.Timer  // reused expiry timer (Recv is single-goroutine)
}

// LinkPair returns the two ends of a connected in-proc link. Closing
// either end closes both — a killed in-proc worker looks exactly like
// a killed process: every pending and future call on the pair fails.
func LinkPair() (master, worker Link) {
	ab := make(chan chanFrame, 64)
	ba := make(chan chanFrame, 64)
	closed := make(chan struct{})
	once := new(sync.Once)
	return &chanLink{in: ba, out: ab, closed: closed, once: once},
		&chanLink{in: ab, out: ba, closed: closed, once: once}
}

func (l *chanLink) Send(tag byte, payload []byte) error {
	select {
	case <-l.closed:
		return ErrTransportClosed
	default:
	}
	// Copy: senders may reuse encode buffers the moment Send returns
	// (same contract as ChanTransport.Send).
	var p []byte
	if len(payload) > 0 {
		p = append(p, payload...)
	}
	select {
	case l.out <- chanFrame{tag: tag, payload: p}:
		return nil
	case <-l.closed:
		return ErrTransportClosed
	}
}

func (l *chanLink) Recv() (byte, []byte, error) {
	// Delivery-first on close, matching ChanTransport.Recv.
	select {
	case f := <-l.in:
		return f.tag, f.payload, nil
	default:
	}
	if d := l.dl.Load(); d != 0 {
		until := time.Until(time.Unix(0, d))
		if until <= 0 {
			return 0, nil, os.ErrDeadlineExceeded
		}
		if l.timer == nil {
			l.timer = time.NewTimer(until)
		} else {
			if !l.timer.Stop() {
				select {
				case <-l.timer.C:
				default:
				}
			}
			l.timer.Reset(until)
		}
		select {
		case f := <-l.in:
			return f.tag, f.payload, nil
		case <-l.closed:
			return 0, nil, ErrTransportClosed
		case <-l.timer.C:
			return 0, nil, os.ErrDeadlineExceeded
		}
	}
	select {
	case f := <-l.in:
		return f.tag, f.payload, nil
	case <-l.closed:
		return 0, nil, ErrTransportClosed
	}
}

// SetRecvDeadline arms (zero time: clears) the link's Recv deadline;
// it applies to Recv calls entered after it returns.
func (l *chanLink) SetRecvDeadline(at time.Time) error {
	if at.IsZero() {
		l.dl.Store(0)
	} else {
		l.dl.Store(at.UnixNano())
	}
	return nil
}

func (l *chanLink) Close() error {
	l.once.Do(func() { close(l.closed) })
	return nil
}

// ---------------------------------------------------------------------
// TCP link and the star listener
// ---------------------------------------------------------------------

// starHello is the tag of the join frame a DialStar worker sends right
// after connecting: [version:4 LE][pid:4 LE], the pid (0 when unknown)
// letting the master SIGKILL real worker processes in chaos runs.
const starHello byte = 0xFE

// TCPLink is one framed TCP connection end.
type TCPLink struct {
	conn   *tcpConn
	raw    net.Conn
	closed atomic.Bool
}

func newTCPLink(c net.Conn) *TCPLink {
	return &TCPLink{conn: &tcpConn{c: c}, raw: c}
}

// Send delivers one tagged frame to the peer.
func (l *TCPLink) Send(tag byte, payload []byte) error {
	if err := l.conn.write(tag, payload); err != nil {
		return l.linkError(err)
	}
	return nil
}

// Recv blocks for the peer's next frame.
func (l *TCPLink) Recv() (byte, []byte, error) {
	tag, payload, err := l.conn.read()
	if err != nil {
		return 0, nil, l.linkError(err)
	}
	return tag, payload, nil
}

// linkError maps a failed read/write: this end's own Close yields
// ErrTransportClosed; a vanished peer keeps its raw error (EOF, reset)
// for the caller — the grid's sub-transport wraps it into a
// RankDeadError with the job-local rank it knows and the link doesn't.
func (l *TCPLink) linkError(err error) error {
	if l.closed.Load() || (errors.Is(err, net.ErrClosed) && !errors.Is(err, io.EOF)) {
		return ErrTransportClosed
	}
	return err
}

// SetRecvDeadline arms (zero time: clears) the read deadline on the
// underlying connection; it also interrupts a Recv already blocked in
// the kernel. Expiry surfaces from Recv with os.ErrDeadlineExceeded.
func (l *TCPLink) SetRecvDeadline(at time.Time) error {
	return l.raw.SetReadDeadline(at)
}

// Close tears the link down.
func (l *TCPLink) Close() error {
	l.closed.Store(true)
	return l.raw.Close()
}

// StarListener accepts grid workers as they dial in — at start-up or
// any time later (late joiners enter the scheduler's free pool). It is
// the dynamic-membership counterpart of ListenTCP/Accept, which need
// the world size up front.
type StarListener struct {
	ln net.Listener

	// WrapConn, when set before accepting, wraps every accepted
	// connection below the framing layer — the hook chaos tests use to
	// interpose a byte-corrupting FaultConn and exercise the CRC path
	// on real sockets.
	WrapConn func(net.Conn) net.Conn
}

// ListenStar opens a listener for grid workers (use "127.0.0.1:0" for
// an ephemeral port, retrievable via Addr).
func ListenStar(addr string) (*StarListener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &StarListener{ln: ln}, nil
}

// Addr returns the listen address (for spawning workers).
func (l *StarListener) Addr() string { return l.ln.Addr().String() }

// AcceptLink blocks for the next worker to dial in and returns its
// link plus the process id it announced (0 when unknown). Identity is
// assigned by the master in accept order — unlike the fixed-rank
// fine-grain hello, a grid worker does not choose its own rank; its
// job-local rank arrives later in each lease's init frame.
//
// The hello read runs under HelloTimeout: a dialer that connects but
// never identifies itself fails here (and the caller moves on to the
// next dialer) instead of wedging admission forever.
func (l *StarListener) AcceptLink() (*TCPLink, int, error) {
	c, err := l.ln.Accept()
	if err != nil {
		return nil, 0, err
	}
	if l.WrapConn != nil {
		c = l.WrapConn(c)
	}
	link := newTCPLink(c)
	if HelloTimeout > 0 {
		c.SetReadDeadline(time.Now().Add(HelloTimeout))
	}
	tag, payload, err := link.Recv()
	if err != nil {
		c.Close()
		return nil, 0, fmt.Errorf("fabric: star hello: %w", err)
	}
	c.SetReadDeadline(time.Time{})
	pid, err := decodeHello("star", tag, starHello, payload)
	if err != nil {
		c.Close()
		return nil, 0, err
	}
	return link, int(pid), nil
}

// Close stops accepting. Already-accepted links stay open.
func (l *StarListener) Close() error { return l.ln.Close() }

// DialStar connects a grid worker to the master at addr — retrying
// with capped exponential backoff plus jitter until DialTimeout, so a
// worker spawned a beat before the master's listener still joins — and
// announces pid (pass os.Getpid(); 0 when not a real process).
func DialStar(addr string, pid int) (*TCPLink, error) {
	c, err := dialRetry(addr)
	if err != nil {
		return nil, err
	}
	link := newTCPLink(c)
	if err := link.Send(starHello, encodeHello(uint32(pid))); err != nil {
		c.Close()
		return nil, err
	}
	return link, nil
}

// ---------------------------------------------------------------------
// Worker-side transport view over one link
// ---------------------------------------------------------------------

// workerTransport adapts a worker's single link to the Transport
// interface the finegrain serve loop speaks: a 2-rank star where the
// master is rank 0 and this endpoint rank 1.
type workerTransport struct {
	link  Link
	stats TransportStats
}

// WorkerTransport wraps a worker's link as a 2-rank Transport (master
// = rank 0, self = rank 1) so finegrain.ServeSessions runs over grid
// links exactly as over a fixed-size world.
func WorkerTransport(l Link) Transport {
	return &workerTransport{link: l}
}

func (w *workerTransport) Rank() int              { return 1 }
func (w *workerTransport) Size() int              { return 2 }
func (w *workerTransport) Stats() *TransportStats { return &w.stats }

// masterGone collapses any broken-link condition to ErrTransportClosed:
// seen from a worker, the master IS the world, so a vanished master —
// clean teardown or crash — always means "serve loop, exit cleanly".
func masterGone(err error) error {
	if errors.Is(err, ErrTransportClosed) {
		return ErrTransportClosed
	}
	return fmt.Errorf("%w (master link: %v)", ErrTransportClosed, err)
}

func (w *workerTransport) Send(to int, tag byte, payload []byte) error {
	if to != 0 {
		return fmt.Errorf("fabric: worker link Send to rank %d (only the master exists)", to)
	}
	if err := w.link.Send(tag, payload); err != nil {
		return masterGone(err)
	}
	w.stats.MessagesSent.Add(1)
	w.stats.BytesSent.Add(int64(len(payload)))
	return nil
}

func (w *workerTransport) Recv(from int) (byte, []byte, error) {
	if from != 0 {
		return 0, nil, fmt.Errorf("fabric: worker link Recv from rank %d (only the master exists)", from)
	}
	tag, payload, err := w.link.Recv()
	if err != nil {
		return 0, nil, masterGone(err)
	}
	w.stats.MessagesRecv.Add(1)
	w.stats.BytesRecv.Add(int64(len(payload)))
	return tag, payload, nil
}

func (w *workerTransport) Close() error { return w.link.Close() }
