package fabric

import (
	"errors"
	"sync"
	"testing"
)

// exerciseLink round-trips frames both ways over a master/worker link
// pair and checks close semantics kill both ends.
func exerciseLink(t *testing.T, master, worker Link) {
	t.Helper()
	if err := master.Send(3, []byte("job")); err != nil {
		t.Fatal(err)
	}
	tag, payload, err := worker.Recv()
	if err != nil || tag != 3 || string(payload) != "job" {
		t.Fatalf("worker got (%d, %q, %v), want (3, job, nil)", tag, payload, err)
	}
	if err := worker.Send(4, []byte("partial")); err != nil {
		t.Fatal(err)
	}
	tag, payload, err = master.Recv()
	if err != nil || tag != 4 || string(payload) != "partial" {
		t.Fatalf("master got (%d, %q, %v), want (4, partial, nil)", tag, payload, err)
	}
	// Sent-before-close frames are still delivered (drain-first).
	if err := master.Send(5, nil); err != nil {
		t.Fatal(err)
	}
	master.Close()
	if tag, _, err := worker.Recv(); err != nil || tag != 5 {
		t.Fatalf("post-close drain got (%d, %v), want (5, nil)", tag, err)
	}
	if _, _, err := worker.Recv(); err == nil {
		t.Fatal("Recv on killed link succeeded")
	}
	// Sends fail too — eventually, on TCP, where the kernel may buffer
	// writes until the peer's reset surfaces.
	for i := 0; ; i++ {
		if err := worker.Send(6, make([]byte, 1<<16)); err != nil {
			break
		}
		if i > 100 {
			t.Fatal("Send on killed link never failed")
		}
	}
}

func TestLinkPair(t *testing.T) {
	m, w := LinkPair()
	exerciseLink(t, m, w)
}

func TestTCPLinkAndStarListener(t *testing.T) {
	ln, err := ListenStar("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var worker Link
	var dialErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		worker, dialErr = DialStar(ln.Addr(), 4242)
	}()
	master, pid, err := ln.AcceptLink()
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if dialErr != nil {
		t.Fatal(dialErr)
	}
	if pid != 4242 {
		t.Fatalf("announced pid %d, want 4242", pid)
	}
	exerciseLink(t, master, worker)
}

// TestWorkerTransportMasterGone pins the worker-side view: ANY broken
// master link — not just a polite local Close — reads as
// ErrTransportClosed, the serve loops' clean-exit signal.
func TestWorkerTransportMasterGone(t *testing.T) {
	m, w := LinkPair()
	wt := WorkerTransport(w)
	if err := m.Send(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if tag, _, err := wt.Recv(0); err != nil || tag != 1 {
		t.Fatalf("Recv got (%d, %v)", tag, err)
	}
	m.Close() // master vanishes
	if _, _, err := wt.Recv(0); !errors.Is(err, ErrTransportClosed) {
		t.Fatalf("Recv after master death got %v, want ErrTransportClosed", err)
	}
	if err := wt.Send(0, 2, nil); !errors.Is(err, ErrTransportClosed) {
		t.Fatalf("Send after master death got %v, want ErrTransportClosed", err)
	}
	if _, _, err := wt.Recv(1); err == nil {
		t.Fatal("Recv from a non-master rank succeeded on a worker link")
	}
}

// TestTCPTransportRankDead pins the satellite fix: a worker process
// vanishing mid-run surfaces to the master as a typed *RankDeadError
// carrying the rank id — not a bare EOF and not a process-fatal
// condition — while the worker's own view of a closed master stays
// ErrTransportClosed.
func TestTCPTransportRankDead(t *testing.T) {
	master, err := ListenTCP("127.0.0.1:0", 3)
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	workers := make([]*TCPTransport, 2)
	var wg sync.WaitGroup
	for r := 1; r <= 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			w, err := DialTCP(master.Addr(), r, 3)
			if err != nil {
				t.Error(err)
				return
			}
			workers[r-1] = w
		}(r)
	}
	if err := master.Accept(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	defer workers[1].Close()

	// Rank 1 "dies" (its endpoint closes both directions, like a killed
	// process). The master's blocked Recv must name rank 1.
	workers[0].Close()
	_, _, err = master.Recv(1)
	rde := AsRankDead(err)
	if rde == nil {
		t.Fatalf("Recv from dead rank got %v, want *RankDeadError", err)
	}
	if rde.Rank != 1 {
		t.Fatalf("RankDeadError names rank %d, want 1", rde.Rank)
	}
	// Sends to the dead rank eventually fail typed too (the first write
	// after the peer reset may be buffered by the kernel, so push until
	// the error surfaces).
	for i := 0; ; i++ {
		err := master.Send(1, 9, make([]byte, 1<<16))
		if err != nil {
			if rde := AsRankDead(err); rde == nil || rde.Rank != 1 {
				t.Fatalf("Send to dead rank got %v, want *RankDeadError{Rank: 1}", err)
			}
			break
		}
		if i > 100 {
			t.Fatal("Send to dead rank never failed")
		}
	}
	// Rank 2 is untouched: traffic still flows.
	if err := master.Send(2, 7, []byte("alive")); err != nil {
		t.Fatal(err)
	}
	if tag, payload, err := workers[1].Recv(0); err != nil || tag != 7 || string(payload) != "alive" {
		t.Fatalf("surviving rank got (%d, %q, %v)", tag, payload, err)
	}
}
