// Package fabric is the coarse-grained parallel substrate of this
// reproduction: an in-memory message-passing layer standing in for MPI.
//
// Go has no mature MPI bindings, and the paper's algorithm barely uses
// MPI anyway — its only noteworthy communications are one MPI_Barrier
// after the bootstrap stage and one best-tree broadcast at the end
// (Section 2.1). What matters for reproducing the paper is the *rank
// model*: p independent processes, each parsing its own input, seeding
// its own RNG (base + 10000·rank), working through its own share of
// searches, and synchronizing at exactly two points. This package
// provides that model: ranks are goroutines, point-to-point messages
// travel over per-pair channels, and collectives (Barrier, Bcast,
// Allreduce, Gather) are implemented with a two-phase shared-slot
// protocol guarded by a reusable, abort-aware barrier.
//
// Determinism: collective results are combined in rank order, so a
// fabric program's output is a pure function of its inputs and seeds,
// independent of goroutine scheduling — the property Section 2.4 of the
// paper demands of the hybrid code.
package fabric

import (
	"errors"
	"fmt"
	"sync"
)

// ErrAborted is returned from communication calls after any rank failed.
var ErrAborted = errors.New("fabric: world aborted")

// message is one point-to-point payload.
type message struct {
	payload any
}

// World owns the shared state of one rank group. Create with Run; a
// World is not reusable across Run invocations.
type World struct {
	size    int
	bar     *barrier
	slots   []any
	fslots  [][]float64      // typed slots for float-vector collectives
	mail    [][]chan message // mail[from][to]
	aborted chan struct{}
	once    sync.Once
}

// abort unblocks every rank waiting in a collective or Recv.
func (w *World) abort() {
	w.once.Do(func() {
		close(w.aborted)
		w.bar.abort()
	})
}

// Comm is one rank's endpoint to the world, analogous to an MPI
// communicator handle. It must only be used by the rank that received
// it.
type Comm struct {
	world *World
	rank  int
}

// Rank returns this rank's index in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.world.size }

// Run launches size ranks, each executing body concurrently with its own
// Comm, and waits for all to finish. If any rank returns an error or
// panics, the world is aborted (unblocking collectives) and Run returns
// the first error by rank index. Run is the analogue of mpirun.
func Run(size int, body func(c *Comm) error) error {
	if size < 1 {
		return fmt.Errorf("fabric: world size %d < 1", size)
	}
	w := &World{
		size:    size,
		bar:     newBarrier(size),
		slots:   make([]any, size),
		fslots:  make([][]float64, size),
		aborted: make(chan struct{}),
	}
	w.mail = make([][]chan message, size)
	for i := range w.mail {
		w.mail[i] = make([]chan message, size)
		for j := range w.mail[i] {
			w.mail[i][j] = make(chan message, 1024)
		}
	}
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					errs[rank] = fmt.Errorf("fabric: rank %d panicked: %v", rank, rec)
					w.abort()
				}
			}()
			if err := body(&Comm{world: w, rank: rank}); err != nil {
				errs[rank] = fmt.Errorf("fabric: rank %d: %w", rank, err)
				w.abort()
			}
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Barrier blocks until all ranks have entered it: the MPI_Barrier the
// hybrid code issues after the bootstrap stage.
func (c *Comm) Barrier() error {
	return c.world.bar.wait()
}

// Send delivers a payload to rank `to`. It blocks only if the channel
// buffer is full, and unblocks with ErrAborted if the world fails.
// After the world has aborted, Send fails deterministically instead of
// quietly enqueueing into a world nobody will drain.
func (c *Comm) Send(to int, v any) error {
	if to < 0 || to >= c.world.size {
		return fmt.Errorf("fabric: Send to invalid rank %d", to)
	}
	select {
	case <-c.world.aborted:
		return ErrAborted
	default:
	}
	select {
	case c.world.mail[c.rank][to] <- message{payload: v}:
		return nil
	case <-c.world.aborted:
		return ErrAborted
	}
}

// Recv receives the next payload sent by rank `from` (FIFO per sender
// pair), blocking until one arrives.
//
// Abort semantics are delivery-first: a message that was fully sent
// before the world aborted is still delivered — only once the pair's
// queue is drained does Recv return ErrAborted. Without the drain-first
// check the select below races its two arms, so a receiver could
// nondeterministically lose a message its peer completed sending just
// before failing elsewhere — the "remote rank aborts mid-message"
// hazard. (A sender that aborts *between* the frames of a multi-part
// message still deterministically strands the receiver on ErrAborted
// at the missing frame, never on a stale queue entry.)
func (c *Comm) Recv(from int) (any, error) {
	if from < 0 || from >= c.world.size {
		return nil, fmt.Errorf("fabric: Recv from invalid rank %d", from)
	}
	select {
	case m := <-c.world.mail[from][c.rank]:
		return m.payload, nil
	default:
	}
	select {
	case m := <-c.world.mail[from][c.rank]:
		return m.payload, nil
	case <-c.world.aborted:
		return nil, ErrAborted
	}
}

// exchange runs the two-phase shared-slot collective protocol: every
// rank deposits contribute, all ranks observe all slots via read, then a
// second barrier protects the slots from the next collective.
func (c *Comm) exchange(contribute any, read func(slots []any)) error {
	w := c.world
	w.slots[c.rank] = contribute
	if err := w.bar.wait(); err != nil {
		return err
	}
	read(w.slots)
	return w.bar.wait()
}

// exchangeFloats is the typed-slot variant of exchange for float-vector
// collectives: payloads travel through a dedicated [][]float64 slot
// array, so the hot reduction path never boxes values into `any` (no
// per-call interface allocation, no type assertions on read-out).
func (c *Comm) exchangeFloats(contribute []float64, read func(slots [][]float64)) error {
	w := c.world
	w.fslots[c.rank] = contribute
	if err := w.bar.wait(); err != nil {
		return err
	}
	read(w.fslots)
	return w.bar.wait()
}

// AllreduceSumFloats sums the ranks' src vectors elementwise — in rank
// order, so the result is deterministic — into dst at every rank. All
// ranks must pass equal-length vectors; dst and src may alias. (The
// distributed likelihood reductions of internal/finegrain run over
// Transport byte frames, not Comm; this is the coarse-grain vector
// collective — e.g. reducing per-rank statistic vectors.)
func (c *Comm) AllreduceSumFloats(dst, src []float64) error {
	n := len(src)
	if len(dst) != n {
		return fmt.Errorf("fabric: AllreduceSumFloats dst has %d entries, src %d", len(dst), n)
	}
	// Sum into private scratch and install only after the exit barrier:
	// dst may alias src, and src stays rank-visible through the slots
	// until every rank has left the collective — writing dst earlier
	// would corrupt slower ranks' reads.
	tmp := make([]float64, n)
	err := c.exchangeFloats(src, func(slots [][]float64) {
		for _, s := range slots {
			if len(s) != n {
				panic(fmt.Sprintf("fabric: AllreduceSumFloats rank vectors disagree: %d vs %d entries", len(s), n))
			}
			for i, v := range s {
				tmp[i] += v
			}
		}
	})
	if err != nil {
		return err
	}
	copy(dst, tmp)
	return nil
}

// BcastFloats distributes root's vector to every rank's dst (equal
// lengths everywhere) without boxing; root's dst is left unchanged.
func (c *Comm) BcastFloats(root int, dst []float64) error {
	if root < 0 || root >= c.Size() {
		return fmt.Errorf("fabric: BcastFloats from invalid root %d", root)
	}
	return c.exchangeFloats(dst, func(slots [][]float64) {
		if c.rank == root {
			return
		}
		if len(slots[root]) != len(dst) {
			panic(fmt.Sprintf("fabric: BcastFloats root vector has %d entries, dst %d", len(slots[root]), len(dst)))
		}
		copy(dst, slots[root])
	})
}

// Bcast distributes root's value to all ranks: the MPI_Bcast that ships
// the winning thorough-search tree to everyone at the end of a
// comprehensive analysis. Every rank passes its local v; the root's v is
// returned everywhere.
func Bcast[T any](c *Comm, root int, v T) (T, error) {
	var out T
	if root < 0 || root >= c.Size() {
		return out, fmt.Errorf("fabric: Bcast from invalid root %d", root)
	}
	err := c.exchange(v, func(slots []any) {
		out = slots[root].(T)
	})
	return out, err
}

// Gather collects every rank's value, in rank order, at all ranks
// (an MPI_Allgather; the paper's code gathers final scores to pick the
// winner).
func Gather[T any](c *Comm, v T) ([]T, error) {
	var out []T
	err := c.exchange(v, func(slots []any) {
		out = make([]T, len(slots))
		for i, s := range slots {
			out[i] = s.(T)
		}
	})
	return out, err
}

// allreduceLoc runs a scalar loc-reduction over the typed float slots:
// every rank contributes one value, all ranks learn the winning value
// and the lowest rank holding it. No `any` boxing on the way.
func (c *Comm) allreduceLoc(v float64, better func(x, best float64) bool) (float64, int, error) {
	contribute := [1]float64{v}
	best, loc := 0.0, -1
	err := c.exchangeFloats(contribute[:], func(slots [][]float64) {
		for i, s := range slots {
			if loc < 0 || better(s[0], best) {
				best, loc = s[0], i
			}
		}
	})
	if err != nil {
		return 0, -1, err
	}
	return best, loc, nil
}

// AllreduceMinLoc returns the minimum value across ranks and the lowest
// rank holding it — MPI_MINLOC, used to select the best (lowest negative
// log-likelihood) thorough search deterministically.
func (c *Comm) AllreduceMinLoc(v float64) (float64, int, error) {
	return c.allreduceLoc(v, func(x, best float64) bool { return x < best })
}

// AllreduceMaxLoc is AllreduceMinLoc for maxima (highest log-likelihood).
func (c *Comm) AllreduceMaxLoc(v float64) (float64, int, error) {
	return c.allreduceLoc(v, func(x, best float64) bool { return x > best })
}

// AllreduceSum returns the sum of v across ranks (deterministic rank
// order), over the typed float slots.
func (c *Comm) AllreduceSum(v float64) (float64, error) {
	dst := [1]float64{v}
	if err := c.AllreduceSumFloats(dst[:], dst[:]); err != nil {
		return 0, err
	}
	return dst[0], nil
}

// AllreduceSumInt returns the integer sum of v across ranks.
func (c *Comm) AllreduceSumInt(v int) (int, error) {
	vals, err := Gather(c, v)
	if err != nil {
		return 0, err
	}
	s := 0
	for _, x := range vals {
		s += x
	}
	return s, nil
}

// barrier is a reusable, generation-counted, abort-aware barrier.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	size    int
	waiting int
	gen     uint64
	dead    bool
}

func newBarrier(size int) *barrier {
	b := &barrier{size: size}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) wait() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.dead {
		return ErrAborted
	}
	gen := b.gen
	b.waiting++
	if b.waiting == b.size {
		b.waiting = 0
		b.gen++
		b.cond.Broadcast()
		return nil
	}
	for gen == b.gen && !b.dead {
		b.cond.Wait()
	}
	if b.dead {
		return ErrAborted
	}
	return nil
}

func (b *barrier) abort() {
	b.mu.Lock()
	b.dead = true
	b.cond.Broadcast()
	b.mu.Unlock()
}
