package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestReproducibleStream(t *testing.T) {
	a := New(12345)
	b := New(12345)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("step %d: streams diverged: %d != %d", i, av, bv)
		}
	}
}

func TestSeedZeroUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		v := r.Uint64()
		if seen[v] {
			t.Fatalf("value %d repeated within 100 draws from seed 0", v)
		}
		seen[v] = true
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d identical draws from different seeds", same)
	}
}

func TestRankSeeding(t *testing.T) {
	if got := Offset(12345, 0); got != 12345 {
		t.Errorf("rank 0 seed = %d, want unchanged 12345", got)
	}
	if got := Offset(12345, 3); got != 12345+30000 {
		t.Errorf("rank 3 seed = %d, want %d", got, 12345+30000)
	}
	// Adjacent rank streams must be decorrelated despite the small,
	// constant seed stride the paper prescribes.
	r0 := ForRank(12345, 0)
	r1 := ForRank(12345, 1)
	same := 0
	for i := 0; i < 1000; i++ {
		if r0.Uint64() == r1.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("rank 0 and rank 1 streams collide %d/1000 times", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(99)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bin %d: count %d too far from expected %.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %g out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean of Float64 = %g, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(11)
	const draws = 200000
	var sum, sumSq float64
	for i := 0; i < draws; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %g, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(13)
	const draws = 200000
	sum := 0.0
	for i := 0; i < draws; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64() = %g negative", v)
		}
		sum += v
	}
	if mean := sum / draws; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %g, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPermUnbiasedFirstElement(t *testing.T) {
	r := New(17)
	const n, draws = 5, 50000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Perm(n)[0]]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("P(first=%d): count %d too far from %.0f", i, c, want)
		}
	}
}

func TestMultinomialConservesTotal(t *testing.T) {
	prop := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw)%500 + 1
		k := int(kRaw)%50 + 1
		counts := New(seed).Multinomial(n, k)
		if len(counts) != k {
			return false
		}
		total := 0
		for _, c := range counts {
			if c < 0 {
				return false
			}
			total += c
		}
		return total == n
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitDecorrelates(t *testing.T) {
	parent := New(12345)
	child := parent.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("parent and split child collide %d/1000 times", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(5).Split()
	b := New(5).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestShuffleMatchesPermSemantics(t *testing.T) {
	r := New(23)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, len(xs))
	for _, v := range xs {
		if seen[v] {
			t.Fatalf("shuffle duplicated element %d", v)
		}
		seen[v] = true
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(1846)
	}
}

func TestStateRoundTrip(t *testing.T) {
	r := New(987)
	for i := 0; i < 5; i++ {
		r.Uint64()
	}
	s := r.State()
	var want [8]uint64
	for i := range want {
		want[i] = r.Uint64()
	}
	// A fresh generator restored to the captured state replays the
	// exact remainder of the stream.
	fresh := New(0)
	fresh.SetState(s)
	for i, w := range want {
		if got := fresh.Uint64(); got != w {
			t.Fatalf("draw %d after restore: %#x, want %#x", i, got, w)
		}
	}
	// Zero state is remapped, never absorbing.
	fresh.SetState(0)
	if fresh.Uint64() == 0 && fresh.Uint64() == 0 {
		t.Fatal("zero state wedged the generator")
	}
}
