// Package rng provides the deterministic pseudo-random number generation
// used throughout the reproduction.
//
// RAxML derives all stochastic decisions (starting-tree insertion orders,
// bootstrap column resampling, subtree selection) from explicit integer
// seeds passed on the command line (-p, -x, -b). The hybrid MPI code of
// Pfeiffer & Stamatakis keeps runs reproducible for a fixed process count
// by seeding rank r with  seed + 10000*r  (Section 2.4 of the paper).
// This package reproduces that scheme: see Offset and ForRank.
//
// The generator is a 64-bit SplitMix64-seeded xorshift* generator. It is
// deliberately not math/rand: we need a self-contained, stable stream whose
// values never change across Go releases, because golden tests and the
// paper-reproduction harness depend on exact sequences.
package rng

import "math"

// RankStride is the seed offset between consecutive ranks, matching the
// constant increment ("multiples of 10,000") described in Section 2.4.
const RankStride = 10000

// RNG is a deterministic 64-bit pseudo-random number generator.
// The zero value is not usable; construct with New.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed. Two generators constructed
// with the same seed produce identical streams.
func New(seed int64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// ForRank returns a generator for the given MPI-style rank, seeded with
// base + RankStride*rank exactly as the hybrid RAxML code seeds each
// process. Rank 0 uses the user-specified seed unchanged.
func ForRank(base int64, rank int) *RNG {
	return New(Offset(base, rank))
}

// Offset returns the seed that ForRank would use for the given rank.
func Offset(base int64, rank int) int64 {
	return base + int64(RankStride)*int64(rank)
}

// Seed resets the generator state from seed. A zero seed is remapped so
// the xorshift state never becomes the absorbing all-zero state.
func (r *RNG) Seed(seed int64) {
	z := uint64(seed)
	// SplitMix64 scrambling: decorrelates nearby seeds (consecutive rank
	// seeds differ by exactly 10000) into statistically independent states.
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x9e3779b97f4a7c15
	}
	r.state = z
}

// State returns the generator's raw internal state, for checkpointing a
// stream mid-run. SetState with the returned value resumes the stream at
// exactly the draw after the State call.
func (r *RNG) State() uint64 { return r.state }

// SetState restores a state previously captured with State. A zero state
// (never produced by Seed or Uint64) is remapped like a zero seed so the
// generator cannot be wedged into the absorbing all-zero state.
func (r *RNG) SetState(s uint64) {
	if s == 0 {
		s = 0x9e3779b97f4a7c15
	}
	r.state = s
}

// Uint64 returns the next 64 pseudo-random bits (xorshift64*).
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns a uniform pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	// Rejection sampling removes modulo bias; the loop terminates quickly
	// because the rejection region is < n out of 2^64 values.
	max := uint64(n)
	limit := (math.MaxUint64 / max) * max
	for {
		v := r.Uint64()
		if v < limit {
			return int(v % max)
		}
	}
}

// Float64 returns a uniform pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 high-quality bits → [0,1) with full double precision.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly permutes n elements using the swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Multinomial draws n samples from k equally likely bins and returns the
// per-bin counts. It is the primitive behind bootstrap column resampling:
// each bootstrap replicate re-weights alignment columns with a multinomial
// draw of (characters) samples over (characters) bins.
func (r *RNG) Multinomial(n, k int) []int {
	counts := make([]int, k)
	for i := 0; i < n; i++ {
		counts[r.Intn(k)]++
	}
	return counts
}

// Split returns a new generator whose stream is decorrelated from r's
// but fully determined by r's current state. Used to hand independent
// streams to worker structures while preserving reproducibility.
func (r *RNG) Split() *RNG {
	return New(int64(r.Uint64()))
}
