// Command benchdiff compares a `go test -bench` text output against the
// committed benchmark baseline (BENCH_BASELINE.json at the repo root)
// and exits non-zero when a gated benchmark regressed by more than the
// threshold in ns/op. The CI bench job runs it after every PR's
// benchmark sweep, so a slowdown in the likelihood hot path fails the
// build instead of landing silently.
//
// Usage:
//
//	go test -run '^$' -bench . -count=3 ./internal/likelihood/ | \
//	    go run ./scripts/benchdiff.go -baseline BENCH_BASELINE.json
//
//	go run ./scripts/benchdiff.go -bench out.txt -baseline BENCH_BASELINE.json -update
//
// Run the sweep with -count=3 (or more): every sample of a benchmark is
// collected and the per-key MEDIAN is what gets compared — and, with
// -update, written to the baseline — so one descheduled sample on a
// noisy machine neither fails the gate nor poisons the recorded value.
//
// Benchmarks are keyed as "<import path>/<benchmark name>" (the
// GOMAXPROCS "-N" suffix is stripped), and only keys matching the -gate
// prefix are compared and stored — the likelihood package by default,
// per the repo's regression policy. New benchmarks absent from the
// baseline are reported but do not fail the run; gated benchmarks that
// are in the baseline but MISSING from the run DO fail it (a crashed
// or deleted benchmark must not silently vacate the gate). Refresh the
// baseline with -update on a quiet machine when the set changes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Baseline is the schema of BENCH_BASELINE.json.
type Baseline struct {
	Recorded string `json:"recorded"`
	CPU      string `json:"cpu"`
	Note     string `json:"note,omitempty"`
	// Benchmarks maps "<pkg>/<name>" to ns/op.
	Benchmarks map[string]float64 `json:"benchmarks"`
	// PreRefactor optionally records historical reference points (e.g.
	// the per-slice CLV layout before the flat-arena refactor) so the
	// current numbers carry their context.
	PreRefactor map[string]float64 `json:"pre_refactor,omitempty"`
}

var (
	benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op`)
	pkgLine   = regexp.MustCompile(`^pkg:\s+(\S+)`)
	cpuLine   = regexp.MustCompile(`^cpu:\s+(.+)$`)
	procsTail = regexp.MustCompile(`-\d+$`)
)

// parseBench extracts "<pkg>/<name>" → median ns/op from go test -bench
// output. Repeated samples of one benchmark (-count=N) are collected
// per key and reduced to their median, so a single outlier sample does
// not decide a gate.
func parseBench(r io.Reader) (map[string]float64, string, error) {
	samples := map[string][]float64{}
	cpu := ""
	pkg := ""
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, "", err
	}
	for _, line := range strings.Split(string(buf), "\n") {
		line = strings.TrimSpace(line)
		if m := pkgLine.FindStringSubmatch(line); m != nil {
			pkg = m[1]
			continue
		}
		if m := cpuLine.FindStringSubmatch(line); m != nil {
			cpu = m[1]
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := procsTail.ReplaceAllString(m[1], "")
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		key := name
		if pkg != "" {
			key = pkg + "/" + name
		}
		samples[key] = append(samples[key], ns)
	}
	out := make(map[string]float64, len(samples))
	for k, s := range samples {
		out[k] = median(s)
	}
	return out, cpu, nil
}

// median returns the middle sample (mean of the middle two for even
// counts). s must be non-empty; it is sorted in place.
func median(s []float64) float64 {
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func main() {
	benchPath := flag.String("bench", "-", "benchmark output file ('-' for stdin)")
	basePath := flag.String("baseline", "BENCH_BASELINE.json", "baseline JSON path")
	threshold := flag.Float64("threshold", 0.15, "allowed ns/op regression fraction")
	gate := flag.String("gate", "raxml/internal/likelihood", "key prefix of gated benchmarks")
	update := flag.Bool("update", false, "rewrite the baseline from this output instead of comparing")
	flag.Parse()

	var in io.Reader = os.Stdin
	if *benchPath != "-" {
		f, err := os.Open(*benchPath)
		if err != nil {
			fatal("open bench output: %v", err)
		}
		defer f.Close()
		in = f
	}
	got, cpu, err := parseBench(in)
	if err != nil {
		fatal("parse bench output: %v", err)
	}
	gated := map[string]float64{}
	for k, v := range got {
		if strings.HasPrefix(k, *gate) {
			gated[k] = v
		}
	}
	if len(gated) == 0 {
		fatal("no benchmarks under gate prefix %q in input (%d total)", *gate, len(got))
	}

	if *update {
		old, _ := readBaseline(*basePath)
		b := Baseline{
			Recorded:   time.Now().UTC().Format("2006-01-02"),
			CPU:        cpu,
			Benchmarks: gated,
		}
		if old != nil {
			b.Note = old.Note
			b.PreRefactor = old.PreRefactor
		}
		j, err := json.MarshalIndent(&b, "", "  ")
		if err != nil {
			fatal("encode baseline: %v", err)
		}
		if err := os.WriteFile(*basePath, append(j, '\n'), 0o644); err != nil {
			fatal("write baseline: %v", err)
		}
		fmt.Printf("benchdiff: wrote %s with %d gated benchmarks\n", *basePath, len(gated))
		return
	}

	base, err := readBaseline(*basePath)
	if err != nil {
		fatal("read baseline: %v", err)
	}
	keys := make([]string, 0, len(gated))
	for k := range gated {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	regressions := 0
	for _, k := range keys {
		ns := gated[k]
		old, ok := base.Benchmarks[k]
		if !ok {
			fmt.Printf("NEW        %-70s %12.0f ns/op (not in baseline)\n", k, ns)
			continue
		}
		delta := ns/old - 1
		status := "ok"
		if delta > *threshold {
			status = "REGRESSION"
			regressions++
		} else if delta < -*threshold {
			status = "faster"
		}
		fmt.Printf("%-10s %-70s %12.0f ns/op  baseline %12.0f  (%+.1f%%)\n",
			status, k, ns, old, 100*delta)
	}
	missing := 0
	for k := range base.Benchmarks {
		if _, ok := gated[k]; !ok && strings.HasPrefix(k, *gate) {
			fmt.Printf("MISSING    %-70s (in baseline, not in this run)\n", k)
			missing++
		}
	}
	if missing > 0 {
		fatal("%d gated benchmark(s) in %s did not run — a crashed or renamed benchmark must not vacate the gate (re-record with -update if the set changed intentionally)",
			missing, *basePath)
	}
	if regressions > 0 {
		fatal("%d gated benchmark(s) regressed more than %.0f%% vs %s (cpu now: %s, baseline: %s)",
			regressions, *threshold*100, *basePath, cpu, base.CPU)
	}
	fmt.Printf("benchdiff: %d gated benchmarks within %.0f%% of baseline\n", len(keys), *threshold*100)
}

func readBaseline(path string) (*Baseline, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(buf, &b); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if b.Benchmarks == nil {
		b.Benchmarks = map[string]float64{}
	}
	return &b, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchdiff: "+format+"\n", args...)
	os.Exit(1)
}
