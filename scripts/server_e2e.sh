#!/usr/bin/env bash
# End-to-end exercise of raxml-as-a-service (raxml -serve): start the
# analysis server over a small spawned-TCP fleet, drive it with curl the
# way a tenant would, and assert the service-layer guarantees that the
# package tests can't see from inside one process:
#
#   * two concurrent submissions (different tenants, different bootstrap
#     seeds) share the fleet under per-tenant rank budgets and each
#     reproduces its one-shot CLI serial reference byte-for-byte;
#   * progress streams over the events endpoint (poll + SSE replay);
#   * a worker process SIGKILLed mid-run is detected and re-striped
#     around, through the server, without disturbing results;
#   * an identical resubmission is deduplicated (results cache) and the
#     warm pattern cache shows hits at /debug/vars;
#   * SIGTERM drains gracefully — the queue persists to disk and no
#     -grid-worker process outlives the master.
#
# Usage: scripts/server_e2e.sh [workdir]   (run from the repo root)
set -euo pipefail

WORK="${1:-srv-e2e}"
PORT="${PORT:-18080}"
BASE="http://127.0.0.1:$PORT"

mkdir -p "$WORK"
go build -o "$WORK/raxml" ./cmd/raxml
go build -o "$WORK/mkdata" ./cmd/mkdata

"$WORK/mkdata" -out "$WORK" -taxa 12 -chars 400 -seed 7
ALIGN="$WORK/custom_12x400.phy"

echo "== serial references (one-shot CLI, -grid 0)"
common="-s $ALIGN -N 20 -starts 2 -grid-batch 5 -p 42 -w $WORK -grid 0"
"$WORK/raxml" $common -x 99 -n ref99 > "$WORK/ref99.log"
"$WORK/raxml" $common -x 777 -n ref777 > "$WORK/ref777.log"

echo "== starting server (2-rank TCP fleet)"
"$WORK/raxml" -serve "127.0.0.1:$PORT" -grid 2 -grid-transport tcp -T 1 \
  -serve-data "$WORK/data" -serve-max-running 2 > "$WORK/server.log" 2>&1 &
SERVER_PID=$!
cleanup() { kill "$SERVER_PID" 2>/dev/null || true; }
trap cleanup EXIT

for i in $(seq 1 100); do
  curl -fsS "$BASE/healthz" > /dev/null 2>&1 && break
  if [ "$i" = 100 ]; then
    echo "server never came up" >&2
    cat "$WORK/server.log" >&2
    exit 1
  fi
  sleep 0.1
done

submit() { # $1 = seed_x, $2 = tenant
  curl -fsS -X POST "$BASE/v1/runs" -H "X-API-Key: $2" \
    -F "alignment=@$ALIGN" -F starts=2 -F bootstraps=20 -F batch=5 \
    -F seed_p=42 -F "seed_x=$1" |
    grep -o '"id":"[^"]*"' | head -1 | cut -d'"' -f4
}
ID1=$(submit 99 alice)
ID2=$(submit 777 bob)
echo "== submitted: $ID1 (alice, -x 99), $ID2 (bob, -x 777)"

echo "== waiting for a worker lease, then SIGKILLing the leased worker mid-job"
# Kill timing matters: a SIGKILLed *idle* worker is only noticed lazily
# at the next lease probe, which may never come on a tiny workload. The
# fleet trace says exactly which worker is leased to which job right
# now, so kill that one — its next dispatch fails, the job re-stripes,
# and the death lands in the trace deterministically.
TRACE="$WORK/data/fleetTrace.jsonl"
for i in $(seq 1 300); do
  grep -q '"ev":"lease"' "$TRACE" 2>/dev/null && break
  if [ "$i" = 300 ]; then
    echo "no lease ever recorded" >&2
    exit 1
  fi
  sleep 0.1
done
LEASE_LINE=$(grep '"ev":"lease"' "$TRACE" | head -1)
WID=$(echo "$LEASE_LINE" | grep -o '"workers":\[[0-9]*' | grep -o '[0-9]*$')
KILLED_JOB=$(echo "$LEASE_LINE" | grep -o '"job":"[^"]*"' | cut -d'"' -f4)
KILLED_RUN=${KILLED_JOB%%/*}
VICTIM=$(grep '"ev":"admit"' "$TRACE" | grep "\"worker\":$WID" | grep -o '"pid":[0-9]*' | cut -d: -f2)
kill -9 "$VICTIM"
echo "   killed worker $WID (pid $VICTIM), leased to $KILLED_JOB"

wait_done() {
  for i in $(seq 1 600); do
    state=$(curl -fsS "$BASE/v1/runs/$1" | grep -o '"state":"[^"]*"' | cut -d'"' -f4)
    case "$state" in
    done)
      return 0
      ;;
    failed | canceled)
      echo "run $1 ended $state" >&2
      curl -fsS "$BASE/v1/runs/$1/events" >&2
      exit 1
      ;;
    esac
    sleep 0.5
  done
  echo "run $1 timed out" >&2
  exit 1
}
wait_done "$ID1"
wait_done "$ID2"
echo "== both runs done"

echo "== rank death was detected and re-striped around"
grep -q '"ev":"rank-dead"' "$TRACE"
curl -fsS "$BASE/v1/runs/$KILLED_RUN/events" | grep -q '"ev":"restripe"'

echo "== events: poll endpoint carries the full lifecycle, SSE replays with an end frame"
curl -fsS "$BASE/v1/runs/$ID1/events" | grep -q '"ev":"replicate"'
curl -fsS "$BASE/v1/runs/$ID1/events" | grep -q '"ev":"run-done"'
curl -fsS -H 'Accept: text/event-stream' "$BASE/v1/runs/$ID1/events" | grep -q '^event: end'

echo "== final trees match the serial references"
curl -fsS "$BASE/v1/runs/$ID1/trees/best" | diff - "$WORK/RAxML_bestTree.ref99"
curl -fsS "$BASE/v1/runs/$ID1/trees/annotated" | diff - "$WORK/RAxML_bipartitions.ref99"
curl -fsS "$BASE/v1/runs/$ID1/trees/consensus" | diff - "$WORK/RAxML_GreedyConsensusTree.ref99"
curl -fsS "$BASE/v1/runs/$ID1/trees/bootstrap" | diff - "$WORK/RAxML_bootstrap.ref99"
curl -fsS "$BASE/v1/runs/$ID2/trees/best" | diff - "$WORK/RAxML_bestTree.ref777"
curl -fsS "$BASE/v1/runs/$ID2/trees/consensus" | diff - "$WORK/RAxML_GreedyConsensusTree.ref777"

echo "== identical resubmission is deduplicated; warm cache shows hits"
curl -fsS -i -X POST "$BASE/v1/runs" -H "X-API-Key: alice" \
  -F "alignment=@$ALIGN" -F starts=2 -F bootstraps=20 -F batch=5 \
  -F seed_p=42 -F seed_x=99 | grep -qi 'X-Raxml-Dedup: hit'
curl -fsS "$BASE/debug/vars" | grep -q '"patterns":{"hits":[1-9]'

echo "== SIGTERM drain: queue persists, no orphaned workers"
kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
test -f "$WORK/data/queue.json"
if pgrep -f -- '-grid-worker' > /dev/null; then
  echo "orphaned grid workers left behind:" >&2
  pgrep -af -- '-grid-worker' >&2
  exit 1
fi
echo "server e2e OK"
