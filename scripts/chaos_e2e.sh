#!/usr/bin/env bash
# Randomized fault-injection acceptance for the elastic grid, as real
# processes: the same comprehensive analysis (ML starts + rapid
# bootstrap + consensus) runs under seeded link-fault schedules
# (-grid-fault-seed: drops, delays, corruption, severs, stragglers per
# worker) over both fleet transports, and every run must reproduce the
# fault-free serial reference — the faults may cost time (deadlines,
# restripes, respawns), never results. Consensus, best tree and the
# support-annotated tree must match byte-for-byte; bootstrap replicate
# trees must match topologically (a restripe re-runs the tail of a
# stream on a different stripe count, which perturbs optimized branch
# lengths at the ~1e-12 reduction-shape level the package tests bound
# via the 1e-10 likelihood gate). A failing seed is replayable: rerun
# with the same -grid-fault-seed.
#
# Usage: scripts/chaos_e2e.sh [workdir] [seeds...]   (from the repo root)
set -euo pipefail

WORK="${1:-chaos-e2e}"
shift || true
SEEDS=("${@:-}")
if [ -z "${SEEDS[0]:-}" ]; then
  SEEDS=(1 2 3 4)
fi

mkdir -p "$WORK"
go build -o "$WORK/raxml" ./cmd/raxml
go build -o "$WORK/mkdata" ./cmd/mkdata

"$WORK/mkdata" -out "$WORK" -taxa 12 -chars 400 -seed 7
common="-s $WORK/custom_12x400.phy -N 20 -starts 2 -grid-batch 5 -p 42 -x 99 -w $WORK"

echo "== serial reference (-grid 0, no faults)"
"$WORK/raxml" $common -n ref -grid 0 > "$WORK/ref.log"

fail=0
for transport in chan tcp; do
  for seed in "${SEEDS[@]}"; do
    name="chaos-$transport-$seed"
    echo "== $transport fleet, fault seed $seed"
    if ! "$WORK/raxml" $common -n "$name" -grid 3 -grid-transport "$transport" \
      -grid-fault-seed "$seed" > "$WORK/$name.log" 2>&1; then
      echo "RUN FAILED (seed $seed, $transport) — replay with -grid-fault-seed $seed" >&2
      tail -20 "$WORK/$name.log" >&2
      fail=1
      continue
    fi
    for out in RAxML_GreedyConsensusTree RAxML_bestTree RAxML_bipartitions; do
      if ! diff "$WORK/$out.ref" "$WORK/$out.$name" > /dev/null; then
        echo "RESULT DRIFT in $out (seed $seed, $transport) — replay with -grid-fault-seed $seed" >&2
        diff "$WORK/$out.ref" "$WORK/$out.$name" >&2 || true
        fail=1
      fi
    done
    # Replicate trees: topology must be exact (strip branch lengths).
    topo() { sed 's/:[0-9.eE+-]*//g' "$1"; }
    if ! diff <(topo "$WORK/RAxML_bootstrap.ref") <(topo "$WORK/RAxML_bootstrap.$name") > /dev/null; then
      echo "TOPOLOGY DRIFT in RAxML_bootstrap (seed $seed, $transport) — replay with -grid-fault-seed $seed" >&2
      diff <(topo "$WORK/RAxML_bootstrap.ref") <(topo "$WORK/RAxML_bootstrap.$name") >&2 || true
      fail=1
    fi
  done
done

# No worker process may outlive its master, faults or not.
if pgrep -f -- '-grid-worker' > /dev/null; then
  echo "orphaned grid workers left behind:" >&2
  pgrep -af -- '-grid-worker' >&2
  fail=1
fi

if [ "$fail" != 0 ]; then
  echo "chaos e2e FAILED" >&2
  exit 1
fi
echo "chaos e2e OK: ${#SEEDS[@]} seeds x {chan,tcp} reproduced the reference exactly"
