package raxml

import (
	"strings"
	"testing"
)

func TestParseAlignmentPHYLIP(t *testing.T) {
	data := []byte("4 8\nta ACGTACGT\ntb ACGTACGA\ntc ACGTACGC\ntd ACGTACGG\n")
	pat, err := ParseAlignment(data)
	if err != nil {
		t.Fatal(err)
	}
	if pat.NumTaxa() != 4 || pat.NumChars() != 8 {
		t.Fatalf("parsed %dx%d, want 4x8", pat.NumTaxa(), pat.NumChars())
	}
}

func TestParseAlignmentFASTA(t *testing.T) {
	data := []byte(">a\nACGT\n>b\nACGA\n>c\nACGC\n>d\nACGG\n")
	pat, err := ParseAlignment(data)
	if err != nil {
		t.Fatal(err)
	}
	if pat.NumTaxa() != 4 {
		t.Fatalf("parsed %d taxa, want 4", pat.NumTaxa())
	}
}

func TestGenerateFacade(t *testing.T) {
	pat, truth, err := Generate(GenerateConfig{Taxa: 8, Chars: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if pat.NumTaxa() != 8 || truth.NumTaxa() != 8 {
		t.Fatal("facade generation inconsistent")
	}
}

func TestScheduleFacade(t *testing.T) {
	s := Schedule(10, 100)
	if s.TotalBootstraps() != 100 || s.TotalThorough() != 10 {
		t.Fatalf("Schedule(10,100) = %+v", s)
	}
}

func TestComprehensiveFacadeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end analysis skipped in -short mode")
	}
	pat, _, err := Generate(GenerateConfig{Taxa: 10, Chars: 300, Seed: 2, TreeScale: 0.5, Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Comprehensive(pat, Options{
		Bootstraps: 10, Ranks: 2, Workers: 2,
		SeedParsimony: 12345, SeedBootstrap: 12345,
	})
	if err != nil {
		t.Fatal(err)
	}
	nw, err := res.AnnotatedNewick()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(nw, ");") {
		t.Fatalf("annotated newick malformed: %s", nw)
	}
	plain, err := res.Newick()
	if err != nil {
		t.Fatal(err)
	}
	if plain == "" {
		t.Fatal("empty newick")
	}
}

func TestMachinesFacade(t *testing.T) {
	if len(Machines()) != 4 {
		t.Fatal("expected the 4 Table-4 machines")
	}
	if len(BenchmarkDataSets()) != 5 {
		t.Fatal("expected the 5 Table-3 data sets")
	}
}

func TestMultiSearchFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end analysis skipped in -short mode")
	}
	pat, _, err := Generate(GenerateConfig{Taxa: 8, Chars: 200, Seed: 3, TreeScale: 0.5, Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := MultiSearch(pat, 3, Options{Ranks: 2, Workers: 1,
		SeedParsimony: 1, SeedBootstrap: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.All) != 4 { // ceil(3/2)*2
		t.Fatalf("%d outcomes, want 4", len(res.All))
	}
}

func TestBootstrapsAndConsensusFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end analysis skipped in -short mode")
	}
	pat, _, err := Generate(GenerateConfig{Taxa: 8, Chars: 300, Seed: 4, TreeScale: 0.5, Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	bs, err := Bootstraps(pat, Options{Bootstraps: 6, Ranks: 2, Workers: 1,
		SeedParsimony: 1, SeedBootstrap: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(bs.Trees) != 6 {
		t.Fatalf("%d replicates, want 6", len(bs.Trees))
	}
	maj, err := MajorityConsensus(bs.Trees)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := GreedyConsensus(bs.Trees)
	if err != nil {
		t.Fatal(err)
	}
	if greedy.NumInternalSplits() < maj.NumInternalSplits() {
		t.Fatal("greedy consensus less resolved than majority")
	}
	if !strings.HasSuffix(maj.Newick(), ";") {
		t.Fatal("consensus newick malformed")
	}
}
