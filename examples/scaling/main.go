// Scaling: reproduce the paper's scaling study on the calibrated
// performance model — Fig. 1/2-style curves for the 1,846-pattern data
// set on Dash, the Table-5 best-configuration sweep, and the single-node
// hybrid-vs-pure comparison of Section 5.1.
package main

import (
	"fmt"
	"log"

	"raxml/internal/perfmodel"
	"raxml/internal/textplot"
)

func main() {
	dash, err := perfmodel.MachineByName("Dash")
	if err != nil {
		log.Fatal(err)
	}
	d, err := perfmodel.DataSetByPatterns(1846)
	if err != nil {
		log.Fatal(err)
	}

	// Fig. 1: speedup vs cores at constant thread counts.
	var series []textplot.Series
	for _, threads := range []int{1, 2, 4, 8} {
		pts, err := perfmodel.SpeedupCurve(dash, d, threads, 100, 80, 0)
		if err != nil {
			log.Fatal(err)
		}
		s := textplot.Series{Name: fmt.Sprintf("%d threads", threads)}
		for _, p := range pts {
			s.X = append(s.X, float64(p.Cores))
			s.Y = append(s.Y, p.Value)
		}
		series = append(series, s)
	}
	fmt.Println(textplot.Chart(
		"speedup vs cores (218 taxa / 1,846 patterns on Dash, 100 bootstraps)",
		series, 64, 18, true))

	// Table-5-style best configurations.
	fmt.Println("best (ranks x threads) per core count:")
	for _, cores := range []int{1, 8, 16, 40, 80} {
		cfg, err := perfmodel.BestConfig(dash, d, cores, 100, 0)
		if err != nil {
			log.Fatal(err)
		}
		speedup := perfmodel.SerialTime(dash, d, 100) / cfg.Time
		fmt.Printf("  %3d cores: %2d x %d  -> %7.0f s  (speedup %5.2f)\n",
			cores, cfg.Ranks, cfg.Threads, cfg.Time, speedup)
	}

	// Section 5.1: one 8-core node, three decompositions.
	fmt.Println("\nsingle 8-core Dash node:")
	for _, c := range []struct {
		label          string
		ranks, threads int
	}{
		{"1 x 8 (Pthreads-only)", 1, 8},
		{"2 x 4 (hybrid)       ", 2, 4},
		{"8 x 1 (MPI-only)     ", 8, 1},
	} {
		t, err := perfmodel.Simulate(perfmodel.Spec{
			Machine: dash, Data: d, Ranks: c.ranks, Threads: c.threads, Bootstraps: 100})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s %7.0f s\n", c.label, t.Total)
	}

	// The thread-count trade-off across data sets (the paper's central
	// observation: optimal threads grow with patterns).
	fmt.Println("\noptimal threads at 80 cores of Dash (100 bootstraps):")
	for _, ds := range perfmodel.DataSets() {
		cfg, err := perfmodel.BestConfig(dash, ds, 80, 100, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s -> %d threads (%d ranks)\n", ds.Name(), cfg.Threads, cfg.Ranks)
	}
}
