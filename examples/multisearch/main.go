// Multisearch: the paper's analysis types 1 and 2, which the
// introduction notes are "straightforward" to parallelize coarsely —
// multiple independent ML searches from different starting trees, and a
// bootstrap-only run summarized with consensus trees.
package main

import (
	"fmt"
	"log"
	"time"

	"raxml"
	"raxml/internal/core"
)

func main() {
	pat, _, err := raxml.Generate(raxml.GenerateConfig{
		Taxa: 12, Chars: 500, Seed: 11, TreeScale: 0.5, Alpha: 1.0,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("data: %d taxa, %d patterns\n\n", pat.NumTaxa(), pat.NumPatterns())

	// ----- Analysis type 1: multiple ML searches (-f d) -----
	// 6 searches over 3 ranks; each rank runs 2 from its own randomized
	// starting trees (seeds offset by 10000*rank).
	opts := raxml.Options{
		Ranks: 3, Workers: 2,
		SeedParsimony: 12345, SeedBootstrap: 12345,
	}
	ms, err := raxml.MultiSearch(pat, 6, opts)
	if err != nil {
		log.Fatal(err)
	}
	core.SortOutcomes(ms.All)
	fmt.Printf("multiple ML searches (%d total, %s):\n", len(ms.All), ms.Elapsed.Round(time.Millisecond))
	for _, o := range ms.All {
		marker := " "
		if o.Rank == ms.Best.Rank && o.Index == ms.Best.Index {
			marker = "*"
		}
		fmt.Printf(" %s rank %d search %d: lnL %.4f\n", marker, o.Rank, o.Index, o.LogLikelihood)
	}
	fmt.Printf("spread between best and worst: %.4f log units\n\n",
		ms.All[0].LogLikelihood-ms.All[len(ms.All)-1].LogLikelihood)

	// ----- Analysis type 2: bootstraps only (-x without -f a) -----
	bsOpts := opts
	bsOpts.Bootstraps = 24
	bs, err := raxml.Bootstraps(pat, bsOpts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bootstrap-only run: %d replicates (%d per rank) in %s\n",
		len(bs.Trees), bs.PerRank, bs.Elapsed.Round(time.Millisecond))

	maj, err := raxml.MajorityConsensus(bs.Trees)
	if err != nil {
		log.Fatal(err)
	}
	greedy, err := raxml.GreedyConsensus(bs.Trees)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("majority-rule consensus: %d of %d possible splits resolved\n",
		maj.NumInternalSplits(), pat.NumTaxa()-3)
	fmt.Printf("greedy (MRE) consensus:  %d of %d possible splits resolved\n",
		greedy.NumInternalSplits(), pat.NumTaxa()-3)
	fmt.Println("\nmajority consensus tree:")
	fmt.Println(maj.Newick())
}
