// Comprehensive: the paper's flagship workload in detail. Runs the same
// analysis serially and as a hybrid (4 ranks x 2 workers), then compares
// run structure, per-rank stage times, solution quality (Table 6's
// claim) and the recovered topology against the generating tree.
package main

import (
	"fmt"
	"log"
	"time"

	"raxml"
	"raxml/internal/tree"
)

func main() {
	pat, truth, err := raxml.Generate(raxml.GenerateConfig{
		Taxa: 14, Chars: 900, Seed: 7, TreeScale: 0.5, Alpha: 0.9,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("data: %d taxa, %d patterns\n\n", pat.NumTaxa(), pat.NumPatterns())

	// The Table-2 work partition for 4 ranks and 20 bootstraps.
	sched := raxml.Schedule(4, 20)
	fmt.Printf("schedule for 4 ranks: %d bootstraps total (%d/rank), %d fast (%d/rank), %d slow (%d/rank), %d thorough\n\n",
		sched.TotalBootstraps(), sched.BootstrapsPerProcess,
		sched.TotalFast(), sched.FastPerProcess,
		sched.TotalSlow(), sched.SlowPerProcess,
		sched.TotalThorough())

	run := func(label string, ranks, workers int) *raxml.Result {
		res, err := raxml.Comprehensive(pat, raxml.Options{
			Bootstraps: 20, Ranks: ranks, Workers: workers,
			SeedParsimony: 12345, SeedBootstrap: 12345,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: lnL %.4f in %s\n", label, res.BestLogLikelihood,
			res.Elapsed.Round(time.Millisecond))
		for _, rep := range res.Ranks {
			fmt.Printf("  rank %d: bs %-10s fast %-10s slow %-10s thorough %-10s lnL %.4f\n",
				rep.Rank,
				rep.Times.Bootstrap.Round(time.Millisecond),
				rep.Times.Fast.Round(time.Millisecond),
				rep.Times.Slow.Round(time.Millisecond),
				rep.Times.Thorough.Round(time.Millisecond),
				rep.ThoroughScore)
		}
		return res
	}

	serial := run("serial (1 rank)", 1, 1)
	fmt.Println()
	hybrid := run("hybrid (4 ranks x 2 workers)", 4, 2)

	fmt.Println()
	if hybrid.BestLogLikelihood >= serial.BestLogLikelihood {
		fmt.Printf("solution quality: hybrid >= serial (%.4f >= %.4f), as in Table 6\n",
			hybrid.BestLogLikelihood, serial.BestLogLikelihood)
	} else {
		fmt.Printf("solution quality: hybrid %.4f vs serial %.4f\n",
			hybrid.BestLogLikelihood, serial.BestLogLikelihood)
	}

	d, err := tree.RobinsonFoulds(hybrid.BestTree, truth)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Robinson-Foulds distance to generating topology: %d (max %d)\n",
		d, tree.MaxRFDistance(pat.NumTaxa()))

	annotated, err := hybrid.AnnotatedNewick()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nbest tree with bootstrap support:")
	fmt.Println(annotated)
}
