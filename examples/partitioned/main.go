// Partitioned: a multi-gene (-q) analysis end to end. mkdata
// synthesizes a 3-gene alignment — every gene evolved on the SAME true
// topology but under different per-gene conditions (rate heterogeneity,
// overall rate) — and writes the RAxML-style partition file next to it;
// the raxml tool then runs a partitioned comprehensive analysis where
// every gene gets its own GTR model instance (frequencies,
// exchangeabilities, per-gene rates) under linked branch lengths, and
// the whole likelihood hot path still costs one pool dispatch per
// traversal.
//
// This drives the exact same code paths as the command lines
//
//	mkdata -out DIR -taxa 12 -chars 300 -genes 3 -seed 7
//	raxml -s DIR/multigene_12x3x300.phy -q DIR/multigene_12x3x300.part \
//	      -m GTRGAMMA -f a -N 8 -T 2 -w DIR -n partdemo
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"raxml"
	"raxml/internal/cli"
)

func main() {
	dir, err := os.MkdirTemp("", "raxml-partitioned")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Synthesize the multi-gene data set + partition file.
	if err := cli.Mkdata([]string{
		"-out", dir, "-taxa", "12", "-chars", "300", "-genes", "3", "-seed", "7",
	}, os.Stdout); err != nil {
		log.Fatal(err)
	}
	base := filepath.Join(dir, "multigene_12x3x300")

	// 2. Inspect the partitioned pattern set through the facade.
	pat, err := raxml.LoadPartitionedAlignment(base+".phy", base+".part")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d taxa, %d sites, %d partitions, %d patterns (partition-major)\n",
		pat.NumTaxa(), pat.NumChars(), pat.NumParts(), pat.NumPatterns())
	for _, pr := range pat.PartRanges() {
		fmt.Printf("  %-8s patterns [%4d, %4d)\n", pr.Name, pr.Lo, pr.Hi)
	}
	fmt.Println()

	// 3. Run the -q analysis through the raxml command-line tool: a
	// small comprehensive run with per-gene GTRGAMMA model instances.
	if err := cli.Raxml([]string{
		"-s", base + ".phy", "-q", base + ".part",
		"-m", "GTRGAMMA", "-f", "a", "-N", "8", "-T", "2",
		"-w", dir, "-n", "partdemo",
	}, os.Stdout); err != nil {
		log.Fatal(err)
	}

	// 4. The per-gene models were optimized independently: show them.
	best, err := os.ReadFile(filepath.Join(dir, "RAxML_bestTree.partdemo"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest tree:\n%s", best)
}
