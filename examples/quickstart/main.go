// Quickstart: generate a small alignment, run a hybrid comprehensive
// analysis (2 ranks x 2 workers), and print the support-annotated best
// tree — the whole public API in ~40 lines.
package main

import (
	"fmt"
	"log"

	"raxml"
)

func main() {
	// Synthesize a 12-taxon alignment with phylogenetic signal. With
	// real data you would use raxml.LoadAlignment("file.phy") instead.
	pat, truth, err := raxml.Generate(raxml.GenerateConfig{
		Taxa: 12, Chars: 600, Seed: 42, TreeScale: 0.5, Alpha: 1.0,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alignment: %d taxa, %d characters, %d distinct patterns\n",
		pat.NumTaxa(), pat.NumChars(), pat.NumPatterns())

	// The paper's -f a pipeline: rapid bootstraps, fast + slow + one
	// thorough ML search per rank, winner selection, support mapping.
	res, err := raxml.Comprehensive(pat, raxml.Options{
		Bootstraps:    20,
		Ranks:         2, // coarse-grained "MPI processes"
		Workers:       2, // fine-grained "Pthreads" per rank
		SeedParsimony: 12345,
		SeedBootstrap: 12345,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("best log-likelihood: %.4f (found by rank %d)\n",
		res.BestLogLikelihood, res.BestRank)
	fmt.Printf("bootstraps performed: %d\n", res.TotalBootstraps)

	annotated, err := res.AnnotatedNewick()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("best tree with support values:")
	fmt.Println(annotated)

	_ = truth // the generating topology, if you want to compare
}
