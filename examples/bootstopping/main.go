// Bootstopping: the paper's stated future work, working. Runs rapid
// bootstraps in batches and stops when the WC-style convergence test
// says the support values are stable, instead of a fixed -N count.
// Demonstrates the parallel bipartition hash table the paper calls for.
package main

import (
	"fmt"
	"log"

	"raxml"
	"raxml/internal/bootstop"
	"raxml/internal/gtr"
	"raxml/internal/likelihood"
	"raxml/internal/rapidbs"
	"raxml/internal/rng"
	"raxml/internal/threads"
	"raxml/internal/tree"
)

func main() {
	// Strong-signal data converge quickly; noisy data need more
	// replicates. Compare both.
	for _, cfg := range []struct {
		label string
		gen   raxml.GenerateConfig
	}{
		{"strong signal", raxml.GenerateConfig{Taxa: 10, Chars: 2000, Seed: 1, TreeScale: 0.4, Alpha: 4}},
		{"weak signal", raxml.GenerateConfig{Taxa: 10, Chars: 120, Seed: 2, TreeScale: 0.1, Alpha: 0.4}},
	} {
		pat, _, err := raxml.Generate(cfg.gen)
		if err != nil {
			log.Fatal(err)
		}
		pool := threads.NewPool(2, pat.NumPatterns())
		eng, err := likelihood.New(pat, gtr.Default(), gtr.NewUniform(pat.NumPatterns()),
			likelihood.Config{Pool: pool})
		if err != nil {
			log.Fatal(err)
		}
		runner := rapidbs.NewRunner(eng)
		bsRNG := rng.New(12345)
		parsRNG := rng.New(12345)

		generate := func(count int) ([]*tree.Tree, error) {
			reps, err := runner.Run(count, bsRNG, parsRNG)
			if err != nil {
				return nil, err
			}
			out := make([]*tree.Tree, len(reps))
			for i, r := range reps {
				out[i] = r.Tree
			}
			return out, nil
		}

		stopper := bootstop.Runner{
			BatchSize:     10,
			MaxReplicates: 60,
			Criterion:     bootstop.DefaultCriterion(),
		}
		trees, batches, err := stopper.Run(generate, rng.New(99))
		if err != nil {
			log.Fatal(err)
		}
		converged, dist, err := bootstop.Converged(trees, bootstop.DefaultCriterion(), rng.New(99))
		if err != nil {
			log.Fatal(err)
		}

		// The concurrent bipartition table (the paper's future-work
		// substrate) tallies split frequencies across all replicates.
		table := bootstop.NewTable(pat.NumTaxa())
		if err := table.AddTrees(trees); err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%s: %d replicates in %d batches; converged=%v (WC distance %.4f)\n",
			cfg.label, len(trees), batches, converged, dist)
		fmt.Printf("  distinct bipartitions observed: %d\n\n", table.Len())
		pool.Close()
	}
	fmt.Println("the fixed -N runs of the paper would have used 100 replicates in every case;")
	fmt.Println("bootstopping adapts the count to the data, as Pattengale et al. proposed.")
}
